package audit

import (
	"bytes"
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowSink delays every write, so tests can fill the queue reliably.
type slowSink struct {
	delay  time.Duration
	writes atomic.Uint64
}

func (s *slowSink) Write(Record, []byte) error {
	time.Sleep(s.delay)
	s.writes.Add(1)
	return nil
}
func (s *slowSink) Sync() error  { return nil }
func (s *slowSink) Close() error { return nil }

// countSink records sync ordering: syncedThrough is the highest write count
// covered by a completed Sync.
type countSink struct {
	mu            sync.Mutex
	writes        uint64
	syncedThrough uint64
}

func (s *countSink) Write(Record, []byte) error {
	s.mu.Lock()
	s.writes++
	s.mu.Unlock()
	return nil
}
func (s *countSink) Sync() error {
	s.mu.Lock()
	s.syncedThrough = s.writes
	s.mu.Unlock()
	return nil
}
func (s *countSink) Close() error { return nil }

func (s *countSink) covered() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncedThrough
}

// TestDrainOnCloseUnderLoad closes the trail while many goroutines append.
// Every append that was acknowledged must be on disk after Close, and Close
// must finish within the drain bound.
func TestDrainOnCloseUnderLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	tr, err := Open(Options{Path: path, Mode: SyncBatched, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	const appenders = 8
	var acked atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < appenders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := tr.Append(Record{Actor: "load", Op: "GET", Outcome: OutcomeOK}); err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					t.Errorf("append: %v", err)
					return
				}
				acked.Add(1)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	closeErr := tr.Close()
	closeTime := time.Since(start)
	close(stop)
	wg.Wait()
	if closeErr != nil {
		t.Fatalf("close: %v", closeErr)
	}
	if closeTime > defaultDrainTimeout {
		t.Fatalf("close took %v, want < %v", closeTime, defaultDrainTimeout)
	}

	var onDisk int
	if err := scanFile(path, nil, func(Record) error { onDisk++; return nil }); err != nil {
		t.Fatal(err)
	}
	if uint64(onDisk) < acked.Load() {
		t.Fatalf("acked %d appends but only %d on disk after close", acked.Load(), onDisk)
	}
	st := tr.Stats()
	if st.Processed != st.Enqueued {
		t.Fatalf("processed %d != enqueued %d after close", st.Processed, st.Enqueued)
	}
}

// TestDropPolicyCounters forces the Drop policy to shed records with a tiny
// queue and a slow sink, and checks the counters add up exactly: every
// append is either enqueued or dropped, and everything enqueued is
// eventually processed.
func TestDropPolicyCounters(t *testing.T) {
	slow := &slowSink{delay: 200 * time.Microsecond}
	tr, err := Open(Options{
		Mode: SyncNone, Workers: 1, QueueDepth: 4, MemoryCap: -1,
		Backpressure: BackpressureDrop, ExtraSinks: []Sink{slow},
	})
	if err != nil {
		t.Fatal(err)
	}
	const appenders, perG = 4, 500
	var dropped, ok atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < appenders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				_, err := tr.Append(Record{Actor: "drop", Op: "SET", Outcome: OutcomeOK})
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrDropped):
					dropped.Add(1)
				default:
					t.Errorf("append: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	total := uint64(appenders * perG)
	if st.Enqueued+st.Dropped != total {
		t.Fatalf("enqueued %d + dropped %d != %d appends", st.Enqueued, st.Dropped, total)
	}
	if st.Enqueued != ok.Load() || st.Dropped != dropped.Load() {
		t.Fatalf("counters (enq=%d drop=%d) disagree with callers (ok=%d drop=%d)",
			st.Enqueued, st.Dropped, ok.Load(), dropped.Load())
	}
	if st.Processed != st.Enqueued {
		t.Fatalf("processed %d != enqueued %d after close", st.Processed, st.Enqueued)
	}
	if dropped.Load() == 0 {
		t.Log("warning: no records dropped; queue never filled (slow machine?)")
	}
	if slow.writes.Load() != st.Processed {
		t.Fatalf("sink saw %d writes, pipeline processed %d", slow.writes.Load(), st.Processed)
	}
}

// TestStrictFsyncBeforeAck asserts the strict-compliance invariant the
// paper's real-time mode is defined by: Append must not return before a
// Sync covering the record has completed.
func TestStrictFsyncBeforeAck(t *testing.T) {
	cs := &countSink{}
	tr, err := Open(Options{
		Mode: SyncEveryOp, Workers: 2, MemoryCap: -1, ExtraSinks: []Sink{cs},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := tr.Append(Record{Actor: "strict", Op: "PUT", Outcome: OutcomeOK}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				// The ack means a sync already covered this record's write.
				if cs.covered() == 0 {
					t.Error("append acked before any sync completed")
					return
				}
			}
		}()
	}
	wg.Wait()
	if tr.Stats().Syncs != 0 {
		t.Fatal("in-memory trail should not count file syncs")
	}
}

// TestStrictFileSyncCoversAck is the file-backed variant: after a strict
// Append returns, the record is readable from disk through a separate file
// handle — durability was established before the ack.
func TestStrictFileSyncCoversAck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	tr, err := Open(Options{Path: path, Mode: SyncEveryOp})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	r, err := tr.Append(Record{Actor: "strict", Op: "PUT", Key: "k1", Outcome: OutcomeOK})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	if err := scanFile(path, nil, func(rec Record) error {
		if rec.Seq == r.Seq {
			found = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("strict append acked but record not on disk")
	}
	if tr.Syncs() == 0 {
		t.Fatal("strict append acked with zero fsyncs")
	}
}

// TestMaskedTrailHidesPII checks the masking acceptance criterion: with a
// mask key set, no raw key/owner/detail bytes appear in the on-disk trail
// or in an exported sink, while engine-side Query still resolves them.
func TestMaskedTrailHidesPII(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	export := &captureSink{}
	tr, err := Open(Options{
		Path: path, Mode: SyncBatched,
		MaskKey:    []byte("trail-mask-key"),
		ExtraSinks: []Sink{export},
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		rawKey   = "pd:alice:rec0001"
		rawOwner = "alice-subject"
		rawNote  = "alice@example.com"
	)
	if _, err := tr.Append(Record{
		Actor: "controller", Op: "PUT", Key: rawKey, Owner: rawOwner,
		Detail: rawNote, Outcome: OutcomeOK,
	}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, pii := range []string{rawKey, rawOwner, rawNote} {
		if bytes.Contains(raw, []byte(pii)) {
			t.Fatalf("raw trail file contains PII %q", pii)
		}
		if strings.Contains(export.text(), pii) {
			t.Fatalf("exported sink output contains PII %q", pii)
		}
	}
	if !strings.Contains(export.text(), maskPrefix) {
		t.Fatalf("exported output carries no pseudonyms: %q", export.text())
	}

	// Engine-side query resolves the pseudonyms back.
	recs, err := tr.Query(Filter{Owner: rawOwner})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != rawKey || recs[0].Detail != rawNote {
		t.Fatalf("query did not unmask: %+v", recs)
	}

	// Breach reports aggregate by real owner inside the engine.
	rep, err := tr.Breach(time.Time{}, time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if rep.AffectedOwners[rawOwner] != 1 {
		t.Fatalf("breach report lost the unmasked owner: %+v", rep.AffectedOwners)
	}

	// After Forget, the pseudonym is permanently unresolvable.
	tr.Masker().Forget(rawOwner)
	recs, err = tr.Query(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Owner == rawOwner {
		t.Fatalf("forgotten owner still resolvable: %+v", recs)
	}
	if !strings.HasPrefix(recs[0].Owner, maskPrefix) {
		t.Fatalf("forgotten owner not left as pseudonym: %q", recs[0].Owner)
	}
}

// captureSink buffers everything written, standing in for an external
// collector.
type captureSink struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *captureSink) Write(_ Record, line []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf.Write(line)
	c.buf.WriteByte('\n')
	return nil
}
func (c *captureSink) Sync() error  { return nil }
func (c *captureSink) Close() error { return nil }
func (c *captureSink) text() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.String()
}

// TestSocketSinkExport runs a real TCP collector and checks records arrive
// line-delimited, and that a dead collector degrades to counted drops
// without failing appends.
func TestSocketSinkExport(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	lines := make(chan string, 16)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 4096)
		var acc []byte
		for {
			n, err := conn.Read(buf)
			if n > 0 {
				acc = append(acc, buf[:n]...)
				for {
					i := bytes.IndexByte(acc, '\n')
					if i < 0 {
						break
					}
					lines <- string(acc[:i])
					acc = acc[i+1:]
				}
			}
			if err != nil {
				return
			}
		}
	}()

	sock, err := NewSocketSink("tcp://" + ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Open(Options{Mode: SyncNone, ExtraSinks: []Sink{sock}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Append(Record{Actor: "exp", Op: "GET", Key: "k", Outcome: OutcomeOK}); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-lines:
		if !strings.Contains(got, `"op":"GET"`) {
			t.Fatalf("exported line missing record payload: %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no line reached the collector")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// Dead collector: appends still succeed, drops are counted, and the
	// pipeline surfaces the failures as sink errors.
	dead, err := NewSocketSink("tcp://127.0.0.1:1") // nothing listens here
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(Options{Mode: SyncNone, ExtraSinks: []Sink{dead}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.Append(Record{Actor: "exp", Op: "GET", Outcome: OutcomeOK}); err != nil {
		t.Fatal(err)
	}
	if err := tr2.Close(); err != nil {
		t.Fatal(err)
	}
	if dead.Dropped() == 0 {
		t.Fatal("dead collector did not count the dropped export")
	}
	if tr2.Stats().SinkErrors == 0 {
		t.Fatal("export failure not counted in sink_errors")
	}
}

// TestInvalidSocketSpec rejects malformed export specs.
func TestInvalidSocketSpec(t *testing.T) {
	for _, spec := range []string{"", "udp://1.2.3.4:1", "tcp://", "unix://"} {
		if _, err := NewSocketSink(spec); err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
}

// TestCloseReturnsDrainTimeout verifies a wedged sink bounds Close.
type stuckSink struct{ release chan struct{} }

func (s *stuckSink) Write(Record, []byte) error { <-s.release; return nil }
func (s *stuckSink) Sync() error                { return nil }
func (s *stuckSink) Close() error               { return nil }

func TestCloseReturnsDrainTimeout(t *testing.T) {
	stuck := &stuckSink{release: make(chan struct{})}
	tr, err := Open(Options{
		Mode: SyncNone, Workers: 1, MemoryCap: -1,
		ExtraSinks: []Sink{stuck}, DrainTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Append(Record{Actor: "a", Op: "GET", Outcome: OutcomeOK}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = tr.Close()
	if !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("close = %v, want drain timeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("close took %v despite 50ms drain timeout", d)
	}
	close(stuck.release)
}

// TestBlockPolicyLosesNothing saturates a tiny queue under the Block policy
// and checks every single append lands in the sink.
func TestBlockPolicyLosesNothing(t *testing.T) {
	slow := &slowSink{delay: 50 * time.Microsecond}
	tr, err := Open(Options{
		Mode: SyncNone, Workers: 2, QueueDepth: 2, MemoryCap: -1,
		Backpressure: BackpressureBlock, ExtraSinks: []Sink{slow},
	})
	if err != nil {
		t.Fatal(err)
	}
	const appenders, perG = 4, 200
	var wg sync.WaitGroup
	for i := 0; i < appenders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				if _, err := tr.Append(Record{Actor: "blk", Op: "SET", Outcome: OutcomeOK}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := slow.writes.Load(); got != appenders*perG {
		t.Fatalf("sink saw %d writes, want %d (Block policy must lose nothing)", got, appenders*perG)
	}
}
