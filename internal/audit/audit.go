// Package audit implements the monitoring subsystem GDPR Article 30
// ("records of processing activities") requires: a sequence-numbered,
// timestamped trail of every control- and data-path interaction with
// personal data, durable enough to demonstrate compliance (Art. 5.2) and
// queryable enough to drive the 72-hour breach notifications of Articles
// 33/34.
//
// This is the subsystem whose cost §4.1 of the paper measures: in strict
// (real-time) mode every record is fsynced before the operation is
// acknowledged, which turns every read into a read-plus-durable-write; in
// eventual mode records are batched and flushed once per second, trading a
// bounded window of log loss for ~6× throughput.
package audit

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"gdprstore/internal/clock"
	"gdprstore/internal/cryptoutil"
)

// Outcome classifies how an audited operation ended.
type Outcome string

// Outcomes.
const (
	OutcomeOK      Outcome = "ok"
	OutcomeDenied  Outcome = "denied"
	OutcomeMissing Outcome = "missing"
	OutcomeError   Outcome = "error"
)

// Record is one audit-trail entry.
type Record struct {
	// Seq is the trail-assigned monotonic sequence number.
	Seq uint64 `json:"seq"`
	// Time is the trail-assigned timestamp.
	Time time.Time `json:"time"`
	// Actor is the authenticated principal that issued the operation.
	Actor string `json:"actor"`
	// Op is the operation name (GET, SET, DEL, GETUSER, ...).
	Op string `json:"op"`
	// Key is the affected key, if any.
	Key string `json:"key,omitempty"`
	// Owner is the data subject whose personal data was touched, if known.
	Owner string `json:"owner,omitempty"`
	// Purpose is the declared processing purpose, if any.
	Purpose string `json:"purpose,omitempty"`
	// Outcome reports how the operation ended.
	Outcome Outcome `json:"outcome"`
	// Detail carries free-form context (error text, byte counts, ...).
	Detail string `json:"detail,omitempty"`
}

// SyncMode selects when audit records reach stable storage.
type SyncMode int

// Sync modes; the names mirror the paper's compliance spectrum.
const (
	// SyncNone never forces a flush (monitoring effectively best-effort).
	SyncNone SyncMode = iota
	// SyncBatched flushes once per second — "eventual compliance".
	SyncBatched
	// SyncEveryOp fsyncs each record before returning — "real-time
	// compliance", the 20× slowdown configuration.
	SyncEveryOp
)

// String returns a human-readable mode name.
func (m SyncMode) String() string {
	switch m {
	case SyncEveryOp:
		return "every-op"
	case SyncBatched:
		return "batched-1s"
	default:
		return "none"
	}
}

// Options configures a Trail.
type Options struct {
	// Path is the trail file. Empty means in-memory only (no durability;
	// useful for tests and for isolating CPU overhead in benchmarks).
	Path string
	// Mode is the durability mode.
	Mode SyncMode
	// Key, if non-nil, encrypts the trail at rest (32 bytes).
	Key []byte
	// Clock supplies record timestamps; defaults to the wall clock.
	Clock clock.Clock
	// MemoryCap bounds the in-memory tail kept for fast queries; older
	// records remain on disk. Default 1<<16 records, 0 means default;
	// negative means keep nothing in memory.
	MemoryCap int
}

// Trail is an audit log. All methods are safe for concurrent use.
type Trail struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	cipher  *cryptoutil.OffsetCipher
	key     []byte
	path    string
	mode    SyncMode
	clk     clock.Clock
	seq     uint64
	dirty   bool
	lastErr error
	closed  bool
	syncs   uint64
	size    int64

	mem    []Record // ring of the most recent records
	memCap int

	stopFlusher chan struct{}
	flusherDone chan struct{}
}

// Open creates or appends to an audit trail.
func Open(opts Options) (*Trail, error) {
	t := &Trail{
		path:   opts.Path,
		mode:   opts.Mode,
		clk:    opts.Clock,
		memCap: opts.MemoryCap,
		key:    opts.Key,
	}
	if t.clk == nil {
		t.clk = clock.NewWall()
	}
	if t.memCap == 0 {
		t.memCap = 1 << 16
	}
	if t.memCap < 0 {
		t.memCap = 0
	}
	if opts.Path != "" {
		f, err := os.OpenFile(opts.Path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
		if err != nil {
			return nil, fmt.Errorf("audit: open: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("audit: stat: %w", err)
		}
		t.f = f
		t.size = st.Size()
		var sink io.Writer = f
		if opts.Key != nil {
			t.cipher, err = cryptoutil.NewOffsetCipher(opts.Key)
			if err != nil {
				f.Close()
				return nil, err
			}
			sink = cryptoutil.NewWriter(f, t.cipher, st.Size())
		}
		t.w = bufio.NewWriterSize(sink, 64*1024)
		// Resume the sequence from the persisted trail so restarts keep the
		// numbering monotonic.
		if err := t.recoverSeq(); err != nil {
			f.Close()
			return nil, err
		}
	}
	if opts.Mode == SyncBatched {
		t.stopFlusher = make(chan struct{})
		t.flusherDone = make(chan struct{})
		go t.flushLoop()
	}
	return t, nil
}

func (t *Trail) recoverSeq() error {
	var last uint64
	n := 0
	err := scanFile(t.path, t.key, func(r Record) error {
		last = r.Seq
		n++
		return nil
	})
	if err != nil {
		return err
	}
	if n > 0 {
		t.seq = last
	}
	return nil
}

// Append adds one record, assigning its sequence number and timestamp, and
// applies the durability mode. The assigned record is returned.
func (t *Trail) Append(r Record) (Record, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return Record{}, errors.New("audit: closed")
	}
	t.seq++
	r.Seq = t.seq
	r.Time = t.clk.Now()

	if t.memCap > 0 {
		if len(t.mem) >= t.memCap {
			// drop the oldest half in one copy to amortise
			half := len(t.mem) / 2
			copy(t.mem, t.mem[half:])
			t.mem = t.mem[:len(t.mem)-half]
		}
		t.mem = append(t.mem, r)
	}

	if t.f != nil {
		line, err := json.Marshal(r)
		if err != nil {
			t.lastErr = err
			return r, err
		}
		line = append(line, '\n')
		n, err := t.w.Write(line)
		t.size += int64(n)
		if err != nil {
			t.lastErr = err
			return r, err
		}
		t.dirty = true
		if t.mode == SyncEveryOp {
			if err := t.syncLocked(); err != nil {
				return r, err
			}
		}
	}
	return r, nil
}

// Sync forces buffered records to stable storage.
func (t *Trail) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.syncLocked()
}

func (t *Trail) syncLocked() error {
	if t.f == nil || !t.dirty {
		return nil
	}
	if err := t.w.Flush(); err != nil {
		t.lastErr = err
		return err
	}
	if err := t.f.Sync(); err != nil {
		t.lastErr = err
		return err
	}
	t.dirty = false
	t.syncs++
	return nil
}

func (t *Trail) flushLoop() {
	defer close(t.flusherDone)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-t.stopFlusher:
			return
		case <-tick.C:
			t.mu.Lock()
			_ = t.syncLocked()
			t.mu.Unlock()
		}
	}
}

// Seq returns the last assigned sequence number.
func (t *Trail) Seq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Syncs returns the number of fsyncs issued.
func (t *Trail) Syncs() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.syncs
}

// Size returns the logical trail size in bytes (0 for in-memory trails).
func (t *Trail) Size() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.size
}

// LastErr returns the most recent persistence error.
func (t *Trail) LastErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastErr
}

// Mode returns the durability mode.
func (t *Trail) Mode() SyncMode { return t.mode }

// Close flushes and closes the trail.
func (t *Trail) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	stop, done := t.stopFlusher, t.flusherDone
	t.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil {
		return nil
	}
	errSync := t.syncLocked()
	errClose := t.f.Close()
	if errSync != nil {
		return errSync
	}
	return errClose
}
