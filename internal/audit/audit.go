// Package audit implements the monitoring subsystem GDPR Article 30
// ("records of processing activities") requires: a sequence-numbered,
// timestamped trail of every control- and data-path interaction with
// personal data, durable enough to demonstrate compliance (Art. 5.2) and
// queryable enough to drive the 72-hour breach notifications of Articles
// 33/34.
//
// This is the subsystem whose cost §4.1 of the paper measures: in strict
// (real-time) mode every record is fsynced before the operation is
// acknowledged, which turns every read into a read-plus-durable-write; in
// eventual mode records are batched and flushed once per second.
//
// Since the pipeline rebuild, Append is a cheap enqueue onto a bounded
// queue drained by worker goroutines that pseudonymize (mask.go),
// serialize and write records through pluggable sinks (sink.go,
// socket.go). Strict mode keeps its fsync-before-ack semantics through a
// per-record completion handshake — with the free upside that concurrent
// strict appends group-commit under one fsync. Back-pressure when the
// queue fills is a policy: Block (no record ever lost; the data path
// waits) or Drop (the data path never waits; shed records are counted).
// See DESIGN.md §11.
package audit

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gdprstore/internal/clock"
	"gdprstore/internal/metrics"
)

// Outcome classifies how an audited operation ended.
type Outcome string

// Outcomes.
const (
	OutcomeOK      Outcome = "ok"
	OutcomeDenied  Outcome = "denied"
	OutcomeMissing Outcome = "missing"
	OutcomeError   Outcome = "error"
)

// Record is one audit-trail entry.
type Record struct {
	// Seq is the trail-assigned monotonic sequence number.
	Seq uint64 `json:"seq"`
	// Time is the trail-assigned timestamp.
	Time time.Time `json:"time"`
	// Actor is the authenticated principal that issued the operation.
	Actor string `json:"actor"`
	// Op is the operation name (GET, SET, DEL, GETUSER, ...).
	Op string `json:"op"`
	// Key is the affected key, if any.
	Key string `json:"key,omitempty"`
	// Owner is the data subject whose personal data was touched, if known.
	Owner string `json:"owner,omitempty"`
	// Purpose is the declared processing purpose, if any.
	Purpose string `json:"purpose,omitempty"`
	// Outcome reports how the operation ended.
	Outcome Outcome `json:"outcome"`
	// Detail carries free-form context (error text, byte counts, ...).
	Detail string `json:"detail,omitempty"`
}

// SyncMode selects when audit records reach stable storage.
type SyncMode int

// Sync modes; the names mirror the paper's compliance spectrum.
const (
	// SyncNone never forces a flush (monitoring effectively best-effort).
	SyncNone SyncMode = iota
	// SyncBatched flushes once per second — "eventual compliance".
	SyncBatched
	// SyncEveryOp fsyncs each record before Append returns — "real-time
	// compliance". Concurrent appends share one fsync (group commit), so
	// the semantics stay per-record while the cost amortises.
	SyncEveryOp
)

// String returns a human-readable mode name.
func (m SyncMode) String() string {
	switch m {
	case SyncEveryOp:
		return "every-op"
	case SyncBatched:
		return "batched-1s"
	default:
		return "none"
	}
}

// Backpressure selects what Append does when the queue is full.
type Backpressure int

// Back-pressure policies.
const (
	// BackpressureBlock makes Append wait for queue space: no record is
	// ever shed, at the cost of coupling the data path to sink speed.
	BackpressureBlock Backpressure = iota
	// BackpressureDrop sheds the record and returns ErrDropped: the data
	// path never waits, and the dropped counter records the monitoring
	// gap for alerting.
	BackpressureDrop
)

// String returns the policy name.
func (b Backpressure) String() string {
	if b == BackpressureDrop {
		return "drop"
	}
	return "block"
}

// Errors returned by the pipeline.
var (
	// ErrClosed is returned by Append after Close.
	ErrClosed = errors.New("audit: closed")
	// ErrDropped is returned by Append when the Drop policy sheds the
	// record. The operation itself succeeded; only its evidence was shed.
	ErrDropped = errors.New("audit: record dropped (queue full)")
	// ErrDrainTimeout is returned by Close when the queue could not drain
	// within DrainTimeout.
	ErrDrainTimeout = errors.New("audit: drain timeout")
)

// Pipeline defaults.
const (
	defaultWorkers      = 2
	defaultQueueDepth   = 4096
	defaultDrainTimeout = 5 * time.Second
	// workerBatch bounds how many queued records one worker claims per
	// pass; in strict mode this is also the group-commit width.
	workerBatch = 64
)

// Options configures a Trail.
type Options struct {
	// Path is the trail file. Empty means in-memory only (no durability;
	// useful for tests and for isolating CPU overhead in benchmarks).
	Path string
	// Mode is the durability mode.
	Mode SyncMode
	// Key, if non-nil, encrypts the trail at rest (32 bytes).
	Key []byte
	// Clock supplies record timestamps; defaults to the wall clock.
	Clock clock.Clock
	// MemoryCap bounds the in-memory tail kept for fast queries; older
	// records remain on disk. Default 1<<16 records, 0 means default;
	// negative means keep nothing in memory.
	MemoryCap int
	// Workers is the number of pipeline worker goroutines (default 2).
	Workers int
	// QueueDepth bounds the enqueue ring (default 4096).
	QueueDepth int
	// Backpressure selects the full-queue policy (default Block).
	Backpressure Backpressure
	// MaskKey, if non-nil, pseudonymizes Key/Owner/Detail under this key
	// before any sink sees the record (mask.go). Engine-side queries
	// resolve pseudonyms through the in-memory reverse table.
	MaskKey []byte
	// ExtraSinks are appended after the file and memory sinks — e.g. a
	// SocketSink exporting the trail to an external collector.
	ExtraSinks []Sink
	// DrainTimeout bounds how long Close waits for the queue to drain
	// (default 5s).
	DrainTimeout time.Duration
}

// pending is one queued unit: the record plus, for strict appends and
// barriers, the completion handshake channel.
type pending struct {
	rec  Record
	done chan error
}

// Trail is an audit log. All methods are safe for concurrent use.
type Trail struct {
	mode   SyncMode
	policy Backpressure
	clk    clock.Clock

	seq atomic.Uint64

	// mu guards closed against enqueue: Append holds it shared for the
	// enqueue attempt, Close holds it exclusively while flipping closed —
	// after which no send can race the queue close. Blocked (Block
	// policy) senders release their share when closing closes.
	mu      sync.RWMutex
	closed  bool
	closing chan struct{}
	queue   chan pending

	file   *FileSink
	mem    *MemSink
	sink   Sink
	masker *Masker

	counters             *metrics.CounterSet
	enqueued             *metrics.Counter
	dropped              *metrics.Counter
	processed            *metrics.Counter
	sinkErrors           *metrics.Counter
	masked               *metrics.Counter
	errMu                sync.Mutex
	lastErr              error
	workers              int
	drainTimeout         time.Duration
	workerWG             sync.WaitGroup
	stopFlusher, flushed chan struct{}
}

// Open creates or appends to an audit trail and starts its pipeline.
func Open(opts Options) (*Trail, error) {
	t := &Trail{
		mode:         opts.Mode,
		policy:       opts.Backpressure,
		clk:          opts.Clock,
		closing:      make(chan struct{}),
		counters:     metrics.NewCounterSet(),
		workers:      opts.Workers,
		drainTimeout: opts.DrainTimeout,
	}
	if t.clk == nil {
		t.clk = clock.NewWall()
	}
	if t.workers <= 0 {
		t.workers = defaultWorkers
	}
	if t.drainTimeout <= 0 {
		t.drainTimeout = defaultDrainTimeout
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = defaultQueueDepth
	}
	t.queue = make(chan pending, depth)
	t.enqueued = t.counters.Get("enqueued")
	t.dropped = t.counters.Get("dropped")
	t.processed = t.counters.Get("processed")
	t.sinkErrors = t.counters.Get("sink_errors")
	t.masked = t.counters.Get("masked")

	memCap := opts.MemoryCap
	if memCap == 0 {
		memCap = 1 << 16
	}
	if memCap > 0 {
		t.mem = NewMemSink(memCap)
	}
	if opts.Path != "" {
		fs, err := NewFileSink(opts.Path, opts.Key)
		if err != nil {
			return nil, err
		}
		// Resume the sequence from the persisted trail so restarts keep
		// the numbering monotonic — a bounded tail read, not an O(file)
		// scan.
		last, err := RecoverLastSeq(opts.Path, opts.Key)
		if err != nil {
			fs.Close()
			return nil, err
		}
		t.seq.Store(last)
		t.file = fs
	}
	if opts.MaskKey != nil {
		t.masker = NewMasker(opts.MaskKey)
	}

	var sinks []Sink
	if t.file != nil {
		sinks = append(sinks, t.file)
	}
	if t.mem != nil {
		sinks = append(sinks, t.mem)
	}
	sinks = append(sinks, opts.ExtraSinks...)
	switch len(sinks) {
	case 1:
		t.sink = sinks[0]
	default:
		t.sink = NewMultiSink(sinks...)
	}

	t.workerWG.Add(t.workers)
	for i := 0; i < t.workers; i++ {
		go t.worker()
	}
	if opts.Mode == SyncBatched {
		t.stopFlusher = make(chan struct{})
		t.flushed = make(chan struct{})
		go t.flushLoop()
	}
	return t, nil
}

// Append adds one record, assigning its sequence number and timestamp,
// and enqueues it for the pipeline. Under SyncEveryOp it does not return
// until the record is fsynced (the strict-compliance handshake); under
// the other modes it returns as soon as the record is queued. Under the
// Drop policy a full queue returns ErrDropped (with the assigned record:
// the operation proceeds, the monitoring gap is counted).
func (t *Trail) Append(r Record) (Record, error) {
	strict := t.mode == SyncEveryOp
	var done chan error
	if strict {
		done = make(chan error, 1)
	}

	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return Record{}, ErrClosed
	}
	r.Seq = t.seq.Add(1)
	r.Time = t.clk.Now()
	p := pending{rec: r, done: done}
	if t.policy == BackpressureDrop {
		select {
		case t.queue <- p:
			t.enqueued.Inc()
		default:
			t.dropped.Inc()
			t.mu.RUnlock()
			return r, ErrDropped
		}
		t.mu.RUnlock()
	} else {
		select {
		case t.queue <- p:
			t.enqueued.Inc()
			t.mu.RUnlock()
		case <-t.closing:
			t.mu.RUnlock()
			return Record{}, ErrClosed
		}
	}

	if strict {
		if err := <-done; err != nil {
			return r, err
		}
	}
	return r, nil
}

// worker drains the queue: each pass claims up to workerBatch pending
// records, masks and serializes them, writes them through the sink, and —
// in strict mode — issues one fsync for the whole claim before
// acknowledging each handshake (group commit).
func (t *Trail) worker() {
	defer t.workerWG.Done()
	batch := make([]pending, 0, workerBatch)
	errs := make([]error, 0, workerBatch)
	for p := range t.queue {
		batch = append(batch[:0], p)
	claim:
		for len(batch) < workerBatch {
			select {
			case q, ok := <-t.queue:
				if !ok {
					break claim
				}
				batch = append(batch, q)
			default:
				break claim
			}
		}
		errs = errs[:0]
		for _, q := range batch {
			errs = append(errs, t.emit(q.rec))
		}
		var syncErr error
		if t.mode == SyncEveryOp {
			if syncErr = t.sink.Sync(); syncErr != nil {
				t.sinkErrors.Inc()
				t.setErr(syncErr)
			}
		}
		t.processed.Add(uint64(len(batch)))
		for i, q := range batch {
			if q.done != nil {
				q.done <- errors.Join(errs[i], syncErr)
			}
		}
	}
}

// emit masks, serializes and writes one record.
func (t *Trail) emit(r Record) error {
	if t.masker != nil {
		r = t.masker.Mask(r)
		t.masked.Inc()
	}
	line, err := json.Marshal(r)
	if err == nil {
		err = t.sink.Write(r, line)
	}
	if err != nil {
		t.sinkErrors.Inc()
		t.setErr(err)
	}
	return err
}

// flushLoop is the SyncBatched once-per-second durability pump. Sync
// failures are not discarded: they set LastErr and count in sink_errors,
// so batched-mode persistence failures surface in INFO audit.
func (t *Trail) flushLoop() {
	defer close(t.flushed)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-t.stopFlusher:
			return
		case <-tick.C:
			if err := t.sink.Sync(); err != nil {
				t.sinkErrors.Inc()
				t.setErr(err)
			}
		}
	}
}

func (t *Trail) setErr(err error) {
	t.errMu.Lock()
	t.lastErr = err
	t.errMu.Unlock()
}

// barrier waits until every record enqueued before the call has been
// processed by the workers, bounded by the drain timeout. Queries use it
// so reads observe their own writes through the async pipeline.
func (t *Trail) barrier() error {
	target := t.enqueued.Load()
	deadline := time.Now().Add(t.drainTimeout)
	for t.processed.Load() < target {
		if time.Now().After(deadline) {
			return ErrDrainTimeout
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}

// Sync drains the queue and forces buffered records to stable storage.
func (t *Trail) Sync() error {
	if err := t.barrier(); err != nil {
		return err
	}
	return t.sink.Sync()
}

// Seq returns the last assigned sequence number.
func (t *Trail) Seq() uint64 { return t.seq.Load() }

// Syncs returns the number of trail-file fsyncs issued.
func (t *Trail) Syncs() uint64 {
	if t.file == nil {
		return 0
	}
	return t.file.Syncs()
}

// Size returns the logical trail size in bytes (0 for in-memory trails).
func (t *Trail) Size() int64 {
	if t.file == nil {
		return 0
	}
	return t.file.Size()
}

// LastErr returns the most recent persistence or sink error.
func (t *Trail) LastErr() error {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return t.lastErr
}

// Mode returns the durability mode.
func (t *Trail) Mode() SyncMode { return t.mode }

// Policy returns the back-pressure policy.
func (t *Trail) Policy() Backpressure { return t.policy }

// Counters exposes the pipeline's event counters (enqueued, dropped,
// processed, sink_errors, masked).
func (t *Trail) Counters() *metrics.CounterSet { return t.counters }

// Masker returns the PII masker, or nil when masking is disabled.
func (t *Trail) Masker() *Masker { return t.masker }

// Stats is a point-in-time view of the pipeline, the payload of the
// server's INFO audit section.
type Stats struct {
	Mode        SyncMode
	Policy      Backpressure
	Workers     int
	QueueCap    int
	QueueDepth  int
	Seq         uint64
	Enqueued    uint64
	Processed   uint64
	Dropped     uint64
	SinkErrors  uint64
	Masked      uint64
	Syncs       uint64
	MaskEnabled bool
	LastErr     string
}

// Stats snapshots the pipeline counters.
func (t *Trail) Stats() Stats {
	st := Stats{
		Mode:        t.mode,
		Policy:      t.policy,
		Workers:     t.workers,
		QueueCap:    cap(t.queue),
		QueueDepth:  len(t.queue),
		Seq:         t.seq.Load(),
		Enqueued:    t.enqueued.Load(),
		Processed:   t.processed.Load(),
		Dropped:     t.dropped.Load(),
		SinkErrors:  t.sinkErrors.Load(),
		Masked:      t.masked.Load(),
		Syncs:       t.Syncs(),
		MaskEnabled: t.masker != nil,
	}
	if err := t.LastErr(); err != nil {
		st.LastErr = err.Error()
	}
	return st
}

// Close drains the queue (bounded by DrainTimeout), stops the workers and
// flusher, and closes every sink. Appends racing Close get ErrClosed;
// every append acknowledged before Close began is durable when Close
// returns nil.
func (t *Trail) Close() error {
	// Unblock any sender stuck on a full queue, then flip closed under
	// the exclusive lock: once taken, no goroutine is inside an enqueue
	// critical section, so closing the channel below cannot race a send.
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.closing)
	t.mu.Unlock()
	close(t.queue)

	drained := make(chan struct{})
	go func() {
		t.workerWG.Wait()
		close(drained)
	}()
	var drainErr error
	select {
	case <-drained:
	case <-time.After(t.drainTimeout):
		drainErr = fmt.Errorf("%w after %v (%d records unflushed)",
			ErrDrainTimeout, t.drainTimeout, t.enqueued.Load()-t.processed.Load())
	}
	if t.stopFlusher != nil {
		close(t.stopFlusher)
		<-t.flushed
	}
	if drainErr != nil {
		// Workers may still hold the sink; closing it under them would
		// trade a bounded leak for a use-after-close.
		t.setErr(drainErr)
		return drainErr
	}
	if err := t.sink.Close(); err != nil {
		t.setErr(err)
		return err
	}
	return nil
}
