package audit

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"sync"
)

// maskPrefix tags pseudonymized fields so tooling (and Unmask) can tell a
// pseudonym from a value that was never masked.
const maskPrefix = "pii:"

// Masker pseudonymizes the PII-bearing fields of audit records (Key,
// Owner, Detail) before they reach any sink, closing the compliance hole
// the paper flags: without it the audit trail is a second, plaintext copy
// of personal data that is itself subject to Art. 17 erasure.
//
// Pseudonyms are HMAC-SHA256 of the plaintext under a trail key,
// truncated to 128 bits — deterministic, so the trail still supports
// equality queries (all operations on one owner carry the same
// pseudonym), but unlinkable to the plaintext without the key. The
// reverse lookup table lives only in engine memory and is never
// persisted: engine-side queries (Query/Breach) read through it, external
// sinks and the on-disk trail see pseudonyms only, and dropping an
// owner's entry (Forget) makes their old trail lines permanently
// unresolvable — Art. 17 on the audit trail itself, without rewriting it.
type Masker struct {
	key []byte

	mu  sync.RWMutex
	rev map[string]string // pseudonym -> plaintext (engine memory only)
}

// NewMasker returns a masker keyed by key (any length; 32 bytes
// recommended).
func NewMasker(key []byte) *Masker {
	k := append([]byte(nil), key...)
	return &Masker{key: k, rev: make(map[string]string)}
}

// pseudonym computes the stable pseudonym for v and records the reverse
// mapping.
func (m *Masker) pseudonym(v string) string {
	mac := hmac.New(sha256.New, m.key)
	mac.Write([]byte(v))
	p := maskPrefix + hex.EncodeToString(mac.Sum(nil)[:16])
	m.mu.Lock()
	m.rev[p] = v
	m.mu.Unlock()
	return p
}

// Mask returns a copy of r with Key, Owner and Detail pseudonymized.
// Empty fields stay empty; Actor, Op, Purpose and Outcome are operational
// (not data-subject) fields and stay legible for monitoring.
func (m *Masker) Mask(r Record) Record {
	if r.Key != "" {
		r.Key = m.pseudonym(r.Key)
	}
	if r.Owner != "" {
		r.Owner = m.pseudonym(r.Owner)
	}
	if r.Detail != "" {
		r.Detail = m.pseudonym(r.Detail)
	}
	return r
}

// Unmask resolves pseudonymized fields back through the in-memory table.
// Pseudonyms with no surviving mapping (a restart, or a Forget) are left
// as-is — the record remains evidentiary without re-identifying the
// subject.
func (m *Masker) Unmask(r Record) Record {
	r.Key = m.resolve(r.Key)
	r.Owner = m.resolve(r.Owner)
	r.Detail = m.resolve(r.Detail)
	return r
}

func (m *Masker) resolve(v string) string {
	if !strings.HasPrefix(v, maskPrefix) {
		return v
	}
	m.mu.RLock()
	plain, ok := m.rev[v]
	m.mu.RUnlock()
	if !ok {
		return v
	}
	return plain
}

// Forget erases the reverse mapping for plaintext v: every trail line
// carrying its pseudonym becomes permanently unresolvable in this engine.
func (m *Masker) Forget(v string) {
	mac := hmac.New(sha256.New, m.key)
	mac.Write([]byte(v))
	p := maskPrefix + hex.EncodeToString(mac.Sum(nil)[:16])
	m.mu.Lock()
	delete(m.rev, p)
	m.mu.Unlock()
}
