package cryptoutil

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func testKey(b byte) []byte { return bytes.Repeat([]byte{b}, BlockCipherKeySize) }

func TestOffsetCipherRoundTrip(t *testing.T) {
	c, err := NewOffsetCipher(testKey(1))
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox jumps over the lazy dog")
	buf := append([]byte(nil), data...)
	c.Apply(buf, 0)
	if bytes.Equal(buf, data) {
		t.Fatal("cipher is identity")
	}
	c.Apply(buf, 0)
	if !bytes.Equal(buf, data) {
		t.Fatal("double-apply did not restore plaintext")
	}
}

func TestOffsetCipherBadKey(t *testing.T) {
	if _, err := NewOffsetCipher([]byte("short")); err != ErrBadKeySize {
		t.Fatalf("err = %v", err)
	}
}

func TestOffsetCipherSplitEqualsWhole(t *testing.T) {
	// Property: encrypting a buffer in arbitrary split positions produces
	// the same ciphertext as encrypting it in one call — the invariant the
	// append-only writer depends on.
	c, _ := NewOffsetCipher(testKey(2))
	f := func(data []byte, splitRaw uint16, offRaw uint16) bool {
		if len(data) == 0 {
			return true
		}
		off := int64(offRaw)
		whole := append([]byte(nil), data...)
		c.Apply(whole, off)

		split := int(splitRaw) % len(data)
		part := append([]byte(nil), data...)
		c.Apply(part[:split], off)
		c.Apply(part[split:], off+int64(split))
		return bytes.Equal(whole, part)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReaderPipeline(t *testing.T) {
	c, _ := NewOffsetCipher(testKey(3))
	var sink bytes.Buffer
	w := NewWriter(&sink, c, 0)
	msgs := [][]byte{[]byte("hello "), []byte("encrypted "), []byte("world")}
	for _, m := range msgs {
		if _, err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	if w.Offset() != int64(sink.Len()) {
		t.Fatalf("offset %d != sink %d", w.Offset(), sink.Len())
	}
	r := NewReader(&sink, c)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello encrypted world" {
		t.Fatalf("got %q", got)
	}
}

func TestWriterDoesNotMutateInput(t *testing.T) {
	c, _ := NewOffsetCipher(testKey(4))
	w := NewWriter(io.Discard, c, 0)
	data := []byte("immutable")
	w.Write(data)
	if string(data) != "immutable" {
		t.Fatal("Write mutated caller's buffer")
	}
}

func TestReaderAtOffset(t *testing.T) {
	c, _ := NewOffsetCipher(testKey(5))
	plain := []byte("0123456789abcdef0123456789abcdef tail")
	ct := append([]byte(nil), plain...)
	c.Apply(ct, 0)
	// Decrypt only the tail, as a reader positioned mid-stream.
	tail := ct[20:]
	r := NewReaderAt(bytes.NewReader(tail), c, 20)
	got, _ := io.ReadAll(r)
	if !bytes.Equal(got, plain[20:]) {
		t.Fatalf("got %q want %q", got, plain[20:])
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	key := testKey(6)
	pt := []byte("personal data")
	ad := []byte("record-key")
	sealed, err := Seal(key, pt, ad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(key, sealed, ad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("got %q", got)
	}
}

func TestOpenRejectsTamper(t *testing.T) {
	key := testKey(6)
	sealed, _ := Seal(key, []byte("data"), []byte("ad"))
	sealed[len(sealed)-1] ^= 1
	if _, err := Open(key, sealed, []byte("ad")); err != ErrCorrupt {
		t.Fatalf("tampered open err = %v", err)
	}
}

func TestOpenRejectsWrongAD(t *testing.T) {
	key := testKey(6)
	sealed, _ := Seal(key, []byte("data"), []byte("key-a"))
	if _, err := Open(key, sealed, []byte("key-b")); err != ErrCorrupt {
		t.Fatal("cross-record replay not rejected (AD binding broken)")
	}
}

func TestOpenRejectsShortCiphertext(t *testing.T) {
	if _, err := Open(testKey(1), []byte("tiny"), nil); err != ErrCorrupt {
		t.Fatalf("err = %v", err)
	}
}

func TestSealUniqueNonces(t *testing.T) {
	key := testKey(7)
	a, _ := Seal(key, []byte("same"), nil)
	b, _ := Seal(key, []byte("same"), nil)
	if bytes.Equal(a, b) {
		t.Fatal("two seals produced identical ciphertext (nonce reuse)")
	}
}

func TestDeriveKeyDeterministicAndDistinct(t *testing.T) {
	master := testKey(8)
	k1 := DeriveKey(master, "ctx1")
	k2 := DeriveKey(master, "ctx1")
	k3 := DeriveKey(master, "ctx2")
	if !bytes.Equal(k1, k2) {
		t.Fatal("derivation not deterministic")
	}
	if bytes.Equal(k1, k3) {
		t.Fatal("contexts collide")
	}
	if len(k1) != BlockCipherKeySize {
		t.Fatalf("derived key length %d", len(k1))
	}
}

func TestKeyringSealOpen(t *testing.T) {
	kr, err := NewKeyring(testKey(9))
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := kr.SealFor("alice", []byte("alice's data"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := kr.OpenFor("alice", sealed)
	if err != nil || string(got) != "alice's data" {
		t.Fatalf("got %q err %v", got, err)
	}
	// Bob's key must not open Alice's record.
	if _, err := kr.OpenFor("bob", sealed); err == nil {
		t.Fatal("cross-owner decryption succeeded")
	}
}

func TestKeyringShred(t *testing.T) {
	kr, _ := NewKeyring(testKey(10))
	sealed, _ := kr.SealFor("alice", []byte("secret"))
	kr.Shred("alice")
	if !kr.Shredded("alice") {
		t.Fatal("shred flag missing")
	}
	if _, err := kr.OpenFor("alice", sealed); err != ErrUnknownKey {
		t.Fatalf("open after shred err = %v", err)
	}
	if _, err := kr.SealFor("alice", []byte("new")); err != ErrUnknownKey {
		t.Fatalf("seal after shred err = %v", err)
	}
}

func TestKeyringShredIrreversibleAfterReinstate(t *testing.T) {
	kr, _ := NewKeyring(testKey(11))
	sealed, _ := kr.SealFor("alice", []byte("old life"))
	kr.Shred("alice")
	kr.Reinstate("alice")
	// New key is random: old ciphertext must stay dead.
	if _, err := kr.OpenFor("alice", sealed); err == nil {
		t.Fatal("old ciphertext readable after reinstate — shred was reversible")
	}
	// But new data flows fine.
	s2, err := kr.SealFor("alice", []byte("new life"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := kr.OpenFor("alice", s2); err != nil || string(got) != "new life" {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestKeyringEnsureWrapImport(t *testing.T) {
	master := testKey(12)
	kr, _ := NewKeyring(master)
	k, wrapped, created, err := kr.Ensure("alice")
	if err != nil || !created || wrapped == nil {
		t.Fatalf("ensure: created=%v err=%v", created, err)
	}
	k2, w2, created2, _ := kr.Ensure("alice")
	if created2 || w2 != nil || !bytes.Equal(k, k2) {
		t.Fatal("second Ensure must return the same key, not create")
	}
	// A fresh keyring (restart) imports the wrapped key and can decrypt.
	sealed, _ := kr.SealFor("alice", []byte("data"))
	kr2, _ := NewKeyring(master)
	if err := kr2.Import("alice", wrapped); err != nil {
		t.Fatal(err)
	}
	got, err := kr2.OpenFor("alice", sealed)
	if err != nil || string(got) != "data" {
		t.Fatalf("after import: %q, %v", got, err)
	}
	// Import with the wrong master must fail.
	kr3, _ := NewKeyring(testKey(13))
	if err := kr3.Import("alice", wrapped); err == nil {
		t.Fatal("import under wrong master succeeded")
	}
}

func TestKeyringExportAll(t *testing.T) {
	master := testKey(14)
	kr, _ := NewKeyring(master)
	kr.KeyFor("alice")
	kr.KeyFor("bob")
	kr.Shred("bob")
	wrapped, err := kr.ExportAll()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := wrapped["alice"]; !ok {
		t.Fatal("alice missing from export")
	}
	if _, ok := wrapped["bob"]; ok {
		t.Fatal("shredded owner exported")
	}
	if owners := kr.ShreddedOwners(); len(owners) != 1 || owners[0] != "bob" {
		t.Fatalf("shredded owners = %v", owners)
	}
}

func TestNewKeyringBadMaster(t *testing.T) {
	if _, err := NewKeyring([]byte("short")); err != ErrBadKeySize {
		t.Fatalf("err = %v", err)
	}
}

func TestRandomKeyLengthAndUniqueness(t *testing.T) {
	a, err := RandomKey()
	if err != nil || len(a) != BlockCipherKeySize {
		t.Fatalf("len=%d err=%v", len(a), err)
	}
	b, _ := RandomKey()
	if bytes.Equal(a, b) {
		t.Fatal("two random keys identical")
	}
}

func TestSealBadKeySize(t *testing.T) {
	if _, err := Seal([]byte("short"), []byte("x"), nil); err != ErrBadKeySize {
		t.Fatalf("err = %v", err)
	}
	if _, err := Open([]byte("short"), []byte("x"), nil); err != ErrBadKeySize {
		t.Fatalf("err = %v", err)
	}
}
