package cryptoutil

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Record-level ("key-level") encryption: each logical owner (a data
// subject) gets a data key; records are sealed with AES-GCM under that
// key. This mirrors the Themis-style per-record encryption the paper
// mentions as the alternative to LUKS+TLS.

// ErrUnknownKey is returned when sealing/opening references a key that is
// not in the ring (possibly because it was shredded).
var ErrUnknownKey = errors.New("cryptoutil: unknown or shredded key")

// ErrCorrupt is returned when an authenticated record fails to open.
var ErrCorrupt = errors.New("cryptoutil: ciphertext corrupt or wrong key")

// Seal encrypts plaintext with AES-256-GCM under key, prepending the nonce.
func Seal(key, plaintext, additionalData []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("cryptoutil: nonce: %w", err)
	}
	out := aead.Seal(nonce, nonce, plaintext, additionalData)
	return out, nil
}

// Open decrypts a record produced by Seal.
func Open(key, sealed, additionalData []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	if len(sealed) < aead.NonceSize() {
		return nil, ErrCorrupt
	}
	nonce, ct := sealed[:aead.NonceSize()], sealed[aead.NonceSize():]
	pt, err := aead.Open(nil, nonce, ct, additionalData)
	if err != nil {
		return nil, ErrCorrupt
	}
	return pt, nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	if len(key) != BlockCipherKeySize {
		return nil, ErrBadKeySize
	}
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(b)
}

// DeriveKey derives a 32-byte subkey from master for the given context
// label using HKDF-style HMAC-SHA256 expansion (RFC 5869 with a fixed
// zero salt, single-block output).
func DeriveKey(master []byte, context string) []byte {
	// extract
	ext := hmac.New(sha256.New, make([]byte, sha256.Size))
	ext.Write(master)
	prk := ext.Sum(nil)
	// expand (one block is exactly 32 bytes)
	exp := hmac.New(sha256.New, prk)
	exp.Write([]byte(context))
	exp.Write([]byte{1})
	return exp.Sum(nil)
}

// Keyring manages per-owner data keys wrapped under a master key. Shredding
// a key makes every record sealed under it permanently unreadable — the
// crypto-erasure fast path for GDPR Article 17.
//
// Each owner also carries a key epoch, incremented whenever the owner's key
// is shredded. Records remember the epoch they were sealed under, so after
// a shred-then-reinstate cycle the store can tell dead ciphertext (old
// epoch, key destroyed) from the subject's fresh data (current epoch)
// without attempting a decryption.
type Keyring struct {
	mu     sync.RWMutex
	master []byte
	keys   map[string][]byte // owner -> data key (unwrapped, in memory)
	shred  map[string]bool   // owners whose keys were destroyed
	epoch  map[string]uint64 // owner -> current key epoch (bumped per shred)
}

// NewKeyring creates a keyring rooted at the given master key.
func NewKeyring(master []byte) (*Keyring, error) {
	if len(master) != BlockCipherKeySize {
		return nil, ErrBadKeySize
	}
	m := make([]byte, len(master))
	copy(m, master)
	return &Keyring{
		master: m,
		keys:   make(map[string][]byte),
		shred:  make(map[string]bool),
		epoch:  make(map[string]uint64),
	}, nil
}

// KeyFor returns the data key for owner, generating a fresh random key on
// first use. It returns ErrUnknownKey if the owner's key was shredded.
// Keys are random (not derived) so that shredding is irreversible; persist
// them across restarts with Ensure/Import.
func (kr *Keyring) KeyFor(owner string) ([]byte, error) {
	k, _, _, err := kr.Ensure(owner)
	return k, err
}

// Ensure returns owner's data key, generating one if needed. It also
// returns the key wrapped (sealed) under the master key — callers journal
// the wrapped form when created is true so the keyring survives restarts —
// and whether this call created the key. The returned key is a defensive
// copy: a concurrent Shred zeroes only the ring's own slice, never one a
// reader is still sealing with.
func (kr *Keyring) Ensure(owner string) (key, wrapped []byte, created bool, err error) {
	kr.mu.RLock()
	if kr.shred[owner] {
		kr.mu.RUnlock()
		return nil, nil, false, ErrUnknownKey
	}
	if k, ok := kr.keys[owner]; ok {
		out := make([]byte, len(k))
		copy(out, k)
		kr.mu.RUnlock()
		return out, nil, false, nil
	}
	kr.mu.RUnlock()

	kr.mu.Lock()
	defer kr.mu.Unlock()
	if kr.shred[owner] {
		return nil, nil, false, ErrUnknownKey
	}
	if k, ok := kr.keys[owner]; ok {
		out := make([]byte, len(k))
		copy(out, k)
		return out, nil, false, nil
	}
	k := make([]byte, BlockCipherKeySize)
	if _, err := io.ReadFull(rand.Reader, k); err != nil {
		return nil, nil, false, fmt.Errorf("cryptoutil: keygen: %w", err)
	}
	w, err := Seal(kr.master, k, []byte("wrap:"+owner))
	if err != nil {
		return nil, nil, false, err
	}
	kr.keys[owner] = k
	out := make([]byte, len(k))
	copy(out, k)
	return out, w, true, nil
}

// Import installs a previously wrapped data key for owner (journal replay).
// Importing clears any shred mark recorded before the import, so replay
// order (GKEY then GSHRED) decides the final state. The owner's epoch is
// left untouched (legacy journals carry no epoch); epoch-carrying records
// use ImportAt.
func (kr *Keyring) Import(owner string, wrapped []byte) error {
	k, err := Open(kr.master, wrapped, []byte("wrap:"+owner))
	if err != nil {
		return err
	}
	kr.mu.Lock()
	defer kr.mu.Unlock()
	kr.keys[owner] = k
	delete(kr.shred, owner)
	return nil
}

// ImportAt is Import for journal records that carry the owner's key epoch:
// it installs the key and pins the epoch to the journaled value, so replay
// reconstructs exactly the epoch each surviving record was sealed under.
func (kr *Keyring) ImportAt(owner string, wrapped []byte, epoch uint64) error {
	k, err := Open(kr.master, wrapped, []byte("wrap:"+owner))
	if err != nil {
		return err
	}
	kr.mu.Lock()
	defer kr.mu.Unlock()
	kr.keys[owner] = k
	delete(kr.shred, owner)
	kr.epoch[owner] = epoch
	return nil
}

// Reinstate clears owner's shred mark so a *new* key can be generated for
// fresh data (e.g. the subject returns as a customer after erasure). Old
// ciphertexts remain unreadable because the old key was random.
func (kr *Keyring) Reinstate(owner string) {
	kr.mu.Lock()
	delete(kr.shred, owner)
	kr.mu.Unlock()
}

// ShreddedOwners returns the owners whose keys were destroyed, for
// journaling during compaction.
func (kr *Keyring) ShreddedOwners() []string {
	kr.mu.RLock()
	defer kr.mu.RUnlock()
	out := make([]string, 0, len(kr.shred))
	for o := range kr.shred {
		out = append(out, o)
	}
	return out
}

// ExportAll returns every live owner key wrapped under the master key, for
// journaling during compaction.
func (kr *Keyring) ExportAll() (map[string][]byte, error) {
	kr.mu.RLock()
	defer kr.mu.RUnlock()
	out := make(map[string][]byte, len(kr.keys))
	for o, k := range kr.keys {
		w, err := Seal(kr.master, k, []byte("wrap:"+o))
		if err != nil {
			return nil, err
		}
		out[o] = w
	}
	return out, nil
}

// Shred destroys owner's data key and advances the owner's epoch. Records
// sealed under it become unrecoverable, which constitutes erasure for
// Article 17 purposes even before the ciphertext itself is reclaimed. The
// key is removed from the ring before it is zeroed, so no reader can reach
// the slice mid-wipe (readers only ever hold defensive copies anyway). The
// new epoch is returned for journaling.
func (kr *Keyring) Shred(owner string) uint64 {
	kr.mu.Lock()
	defer kr.mu.Unlock()
	if k, ok := kr.keys[owner]; ok {
		delete(kr.keys, owner)
		for i := range k {
			k[i] = 0
		}
	}
	kr.shred[owner] = true
	kr.epoch[owner]++
	return kr.epoch[owner]
}

// ShredAt applies a journaled shred marker: the key is destroyed and the
// epoch advanced to at least the journaled value. Re-applying the same
// record (replay, replication resync overlap) is idempotent.
func (kr *Keyring) ShredAt(owner string, epoch uint64) {
	kr.mu.Lock()
	defer kr.mu.Unlock()
	if k, ok := kr.keys[owner]; ok {
		delete(kr.keys, owner)
		for i := range k {
			k[i] = 0
		}
	}
	kr.shred[owner] = true
	if kr.epoch[owner] < epoch {
		kr.epoch[owner] = epoch
	}
}

// Epoch returns owner's current key epoch (0 until the first shred).
func (kr *Keyring) Epoch(owner string) uint64 {
	kr.mu.RLock()
	defer kr.mu.RUnlock()
	return kr.epoch[owner]
}

// Epochs returns a snapshot of every owner's epoch, for journaling during
// compaction.
func (kr *Keyring) Epochs() map[string]uint64 {
	kr.mu.RLock()
	defer kr.mu.RUnlock()
	out := make(map[string]uint64, len(kr.epoch))
	for o, e := range kr.epoch {
		out[o] = e
	}
	return out
}

// RecordLive reports whether a record sealed under the given epoch for
// owner is still readable: the owner is not shredded and the epoch is
// current. A false result means the ciphertext is dead — its key was
// destroyed — even if the owner has since been reinstated with a new key.
func (kr *Keyring) RecordLive(owner string, epoch uint64) bool {
	kr.mu.RLock()
	defer kr.mu.RUnlock()
	return !kr.shred[owner] && kr.epoch[owner] == epoch
}

// ShredCount returns how many owners are currently marked shredded.
func (kr *Keyring) ShredCount() int {
	kr.mu.RLock()
	defer kr.mu.RUnlock()
	return len(kr.shred)
}

// Shredded reports whether owner's key has been destroyed.
func (kr *Keyring) Shredded(owner string) bool {
	kr.mu.RLock()
	defer kr.mu.RUnlock()
	return kr.shred[owner]
}

// SealFor seals plaintext under owner's data key.
func (kr *Keyring) SealFor(owner string, plaintext []byte) ([]byte, error) {
	k, err := kr.KeyFor(owner)
	if err != nil {
		return nil, err
	}
	return Seal(k, plaintext, []byte(owner))
}

// OpenFor opens a record sealed with SealFor.
func (kr *Keyring) OpenFor(owner string, sealed []byte) ([]byte, error) {
	k, err := kr.KeyFor(owner)
	if err != nil {
		return nil, err
	}
	return Open(k, sealed, []byte(owner))
}

// RandomKey generates a fresh random 32-byte key.
func RandomKey() ([]byte, error) {
	k := make([]byte, BlockCipherKeySize)
	if _, err := io.ReadFull(rand.Reader, k); err != nil {
		return nil, err
	}
	return k, nil
}
