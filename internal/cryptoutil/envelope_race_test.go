package cryptoutil

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestKeyringShredRace is the regression test for the shred/seal data
// race: Ensure and KeyFor used to return the keyring's live key slice,
// and Shred zeroed that same backing array in place — a concurrent
// SealFor/OpenFor could read a half-zeroed key (or trip the race
// detector). The fix returns defensive copies and deletes the map entry
// before zeroing. This test hammers seal/open against shred/reinstate
// cycles; run it under -race.
func TestKeyringShredRace(t *testing.T) {
	master := bytes.Repeat([]byte{0x33}, 32)
	kr, err := NewKeyring(master)
	if err != nil {
		t.Fatal(err)
	}
	owners := []string{"alice", "bob", "carol"}
	const iters = 500

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pt := []byte(fmt.Sprintf("payload-%d", g))
			for i := 0; i < iters; i++ {
				owner := owners[i%len(owners)]
				sealed, err := kr.SealFor(owner, pt)
				if err != nil {
					continue // ErrUnknownKey while shredded: expected
				}
				got, err := kr.OpenFor(owner, sealed)
				if err != nil {
					// The owner was shredded between seal and open;
					// legitimate under this schedule.
					continue
				}
				if !bytes.Equal(got, pt) {
					t.Errorf("roundtrip corrupted: %q != %q (half-zeroed key?)", got, pt)
					return
				}
				if _, err := kr.KeyFor(owner); err == nil {
					_, _, _, _ = kr.Ensure(owner)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			owner := owners[i%len(owners)]
			kr.Shred(owner)
			_ = kr.Shredded(owner)
			_ = kr.Epoch(owner)
			kr.Reinstate(owner)
		}
	}()
	wg.Wait()
}

// TestEnsureReturnsDefensiveCopy pins the fix directly: mutating the
// slices Ensure/KeyFor hand out must not corrupt the keyring's state.
func TestEnsureReturnsDefensiveCopy(t *testing.T) {
	master := bytes.Repeat([]byte{0x44}, 32)
	kr, err := NewKeyring(master)
	if err != nil {
		t.Fatal(err)
	}
	k1, w1, _, err := kr.Ensure("alice")
	if err != nil {
		t.Fatal(err)
	}
	for i := range k1 {
		k1[i] = 0xFF
	}
	for i := range w1 {
		w1[i] ^= 0xFF
	}
	k2, err := kr.KeyFor("alice")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k1, k2) {
		t.Fatal("KeyFor returned the mutated caller slice: no defensive copy")
	}
	sealed, err := kr.SealFor("alice", []byte("intact"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := kr.OpenFor("alice", sealed); err != nil || string(got) != "intact" {
		t.Fatalf("keyring state corrupted by caller mutation: %q, %v", got, err)
	}
	// The wrapped copy is defensive too: the original export still
	// imports into a fresh keyring.
	wrapped, err := kr.ExportAll()
	if err != nil {
		t.Fatal(err)
	}
	kr2, err := NewKeyring(master)
	if err != nil {
		t.Fatal(err)
	}
	if err := kr2.Import("alice", wrapped["alice"]); err != nil {
		t.Fatalf("exported wrapped key corrupted: %v", err)
	}
	if got, err := kr2.OpenFor("alice", sealed); err != nil || string(got) != "intact" {
		t.Fatalf("reimported key cannot open: %q, %v", got, err)
	}
}

// TestShredEpochSemantics pins the epoch mechanism the compliance layer
// leans on: every shred advances the epoch, records sealed under an older
// epoch are dead even after reinstatement, and ShredAt/ImportAt replay
// idempotently.
func TestShredEpochSemantics(t *testing.T) {
	master := bytes.Repeat([]byte{0x55}, 32)
	kr, err := NewKeyring(master)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := kr.Ensure("alice"); err != nil {
		t.Fatal(err)
	}
	e0 := kr.Epoch("alice")
	if !kr.RecordLive("alice", e0) {
		t.Fatal("freshly sealed record not live")
	}
	e1 := kr.Shred("alice")
	if e1 != e0+1 {
		t.Fatalf("Shred epoch = %d, want %d", e1, e0+1)
	}
	if kr.RecordLive("alice", e0) {
		t.Fatal("old-epoch record live while owner shredded")
	}
	kr.Reinstate("alice")
	if kr.RecordLive("alice", e0) {
		t.Fatal("reinstatement resurrected an old-epoch record")
	}
	_, w, _, err := kr.Ensure("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !kr.RecordLive("alice", e1) {
		t.Fatal("new-epoch record not live after reinstate")
	}
	// Replay: ShredAt with a stale epoch must not regress the counter.
	kr.ShredAt("alice", e0)
	if kr.Epoch("alice") != e1 {
		t.Fatalf("ShredAt regressed epoch to %d", kr.Epoch("alice"))
	}
	kr.ShredAt("alice", e1)
	if kr.Epoch("alice") != e1 || !kr.Shredded("alice") {
		t.Fatal("idempotent ShredAt re-apply changed state")
	}
	// ImportAt restores the key at its recorded epoch.
	if err := kr.ImportAt("alice", w, e1); err != nil {
		t.Fatal(err)
	}
	if kr.Shredded("alice") || kr.Epoch("alice") != e1 {
		t.Fatalf("ImportAt state: shredded=%v epoch=%d", kr.Shredded("alice"), kr.Epoch("alice"))
	}
	if !kr.RecordLive("alice", e1) {
		t.Fatal("record sealed at imported epoch not live")
	}
}
