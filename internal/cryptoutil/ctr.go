// Package cryptoutil supplies the two encryption substrates the paper's
// §4.2 evaluates:
//
//   - a block-layer cipher (AES-CTR keyed by byte offset) standing in for
//     LUKS/dm-crypt: every byte persisted to disk passes through it, so the
//     at-rest encryption cost lands on the same code path it does under
//     LUKS;
//   - record-level envelope encryption (AES-GCM with per-user data keys
//     wrapped by a master key), standing in for the "key-level encryption"
//     alternative the paper probed with the Themis library. Deleting a
//     user's data key crypto-shreds every record it protected, which the
//     compliance layer uses as a fast path for the right to be forgotten.
package cryptoutil

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// BlockCipherKeySize is the AES-256 key length used throughout.
const BlockCipherKeySize = 32

// ErrBadKeySize is returned when a key is not BlockCipherKeySize bytes.
var ErrBadKeySize = errors.New("cryptoutil: key must be 32 bytes")

// OffsetCipher encrypts and decrypts byte ranges of a logically infinite
// stream addressed by absolute offset, the way a block-device cipher
// addresses sectors. Because CTR mode is XOR-symmetric, Apply both encrypts
// and decrypts.
type OffsetCipher struct {
	block cipher.Block
}

// NewOffsetCipher creates an offset-addressed AES-256-CTR cipher.
func NewOffsetCipher(key []byte) (*OffsetCipher, error) {
	if len(key) != BlockCipherKeySize {
		return nil, ErrBadKeySize
	}
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &OffsetCipher{block: b}, nil
}

// Apply XORs data (in place) with the keystream positioned at the given
// absolute byte offset. Calling Apply twice at the same offset restores the
// original bytes.
func (c *OffsetCipher) Apply(data []byte, offset int64) {
	if len(data) == 0 {
		return
	}
	bs := int64(c.block.BlockSize()) // 16
	var ctr, ks [16]byte
	blockNo := offset / bs
	within := int(offset % bs)
	for len(data) > 0 {
		binary.BigEndian.PutUint64(ctr[8:], uint64(blockNo))
		c.block.Encrypt(ks[:], ctr[:])
		n := int(bs) - within
		if n > len(data) {
			n = len(data)
		}
		for i := 0; i < n; i++ {
			data[i] ^= ks[within+i]
		}
		data = data[n:]
		within = 0
		blockNo++
	}
}

// Writer encrypts through to an underlying io.Writer, tracking the absolute
// offset so appends continue the keystream correctly (e.g. reopening an
// AOF). Writer buffers nothing.
type Writer struct {
	w       io.Writer
	c       *OffsetCipher
	offset  int64
	scratch []byte
}

// NewWriter creates an encrypting writer positioned at offset (the current
// size of the underlying file for appends).
func NewWriter(w io.Writer, c *OffsetCipher, offset int64) *Writer {
	return &Writer{w: w, c: c, offset: offset}
}

// Write implements io.Writer. The input slice is not modified.
func (ew *Writer) Write(p []byte) (int, error) {
	if cap(ew.scratch) < len(p) {
		ew.scratch = make([]byte, len(p))
	}
	buf := ew.scratch[:len(p)]
	copy(buf, p)
	ew.c.Apply(buf, ew.offset)
	n, err := ew.w.Write(buf)
	ew.offset += int64(n)
	if err != nil {
		return n, fmt.Errorf("cryptoutil: encrypted write: %w", err)
	}
	return n, nil
}

// Offset returns the current absolute write offset.
func (ew *Writer) Offset() int64 { return ew.offset }

// Reader decrypts from an underlying io.Reader starting at offset 0 of the
// keystream (use NewReaderAt for other positions).
type Reader struct {
	r      io.Reader
	c      *OffsetCipher
	offset int64
}

// NewReader creates a decrypting reader positioned at stream offset 0.
func NewReader(r io.Reader, c *OffsetCipher) *Reader {
	return &Reader{r: r, c: c}
}

// NewReaderAt creates a decrypting reader positioned at the given keystream
// offset.
func NewReaderAt(r io.Reader, c *OffsetCipher, offset int64) *Reader {
	return &Reader{r: r, c: c, offset: offset}
}

// Read implements io.Reader.
func (er *Reader) Read(p []byte) (int, error) {
	n, err := er.r.Read(p)
	if n > 0 {
		er.c.Apply(p[:n], er.offset)
		er.offset += int64(n)
	}
	return n, err
}
