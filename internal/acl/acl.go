// Package acl implements the fine-grained, dynamic access control GDPR
// Articles 25 ("data protection by design and by default") and 32
// ("security of processing") require of a compliant store. The model is
// deliberately GDPR-shaped rather than POSIX-shaped:
//
//   - principals have roles (controller, processor, data subject,
//     regulator) that bound what operation classes they may issue;
//   - grants tie a principal to a processing purpose, optionally scoped to
//     one data subject and bounded by an expiry ("predefined duration of
//     time", Art. 25);
//   - the default is deny ("by default", Art. 25);
//   - subjects always retain access to their own data (Art. 15), and
//     regulators always have read access to audit artefacts (Art. 58 is out
//     of scope, but GDPRbench's regulator role needs it).
package acl

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gdprstore/internal/clock"
)

// Role classifies a principal, following the GDPR vocabulary.
type Role int

// Roles.
const (
	// RoleSubject is a data subject: may exercise rights over own data.
	RoleSubject Role = iota
	// RoleProcessor processes personal data under granted purposes.
	RoleProcessor
	// RoleController administers the store and all personal data in it.
	RoleController
	// RoleRegulator audits compliance (read-only over metadata and logs).
	RoleRegulator
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleSubject:
		return "subject"
	case RoleProcessor:
		return "processor"
	case RoleController:
		return "controller"
	case RoleRegulator:
		return "regulator"
	default:
		return "unknown"
	}
}

// OpClass is the coarse class of an operation for role checks.
type OpClass int

// Operation classes.
const (
	// OpRead covers GET and metadata reads of personal data.
	OpRead OpClass = iota
	// OpWrite covers SET/UPDATE/DEL of personal data.
	OpWrite
	// OpRights covers data-subject rights operations (access, erasure,
	// portability, objection).
	OpRights
	// OpAdmin covers policy and configuration changes.
	OpAdmin
	// OpAudit covers audit-trail queries and breach reports.
	OpAudit
)

// String returns the class name.
func (c OpClass) String() string {
	switch c {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpRights:
		return "rights"
	case OpAdmin:
		return "admin"
	case OpAudit:
		return "audit"
	default:
		return "unknown"
	}
}

// Principal is an authenticated identity.
type Principal struct {
	// ID is the unique principal name ("analytics-svc", "alice", ...).
	ID string
	// Role bounds the principal's operation classes.
	Role Role
}

// Grant permits a principal to process data for a purpose.
type Grant struct {
	// Principal is the grantee.
	Principal string
	// Purpose is the processing purpose the grant covers ("billing",
	// "marketing", ...). "*" covers all purposes.
	Purpose string
	// Owner optionally scopes the grant to a single data subject; empty
	// covers all subjects.
	Owner string
	// Expires bounds the grant in time; zero means no expiry.
	Expires time.Time
}

// Decision is the outcome of an access check, with the reason retained for
// the audit trail.
type Decision struct {
	Allowed bool
	Reason  string
}

// ErrDenied is returned (wrapped) when an operation is not permitted.
var ErrDenied = errors.New("acl: access denied")

// List is the access-control state. All methods are safe for concurrent
// use.
type List struct {
	mu         sync.RWMutex
	principals map[string]Principal
	grants     map[string][]Grant // principal -> grants
	clk        clock.Clock
	// enforce toggles checking: when false every check allows (the
	// "unmodified Redis" configuration, which has no access control).
	enforce bool
}

// New creates an enforcing ACL with the given clock (nil = wall clock).
func New(clk clock.Clock) *List {
	if clk == nil {
		clk = clock.NewWall()
	}
	return &List{
		principals: make(map[string]Principal),
		grants:     make(map[string][]Grant),
		clk:        clk,
		enforce:    true,
	}
}

// SetEnforce toggles enforcement. Disabled enforcement models the baseline
// (non-compliant) store.
func (l *List) SetEnforce(on bool) {
	l.mu.Lock()
	l.enforce = on
	l.mu.Unlock()
}

// Enforcing reports whether checks are enforced.
func (l *List) Enforcing() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.enforce
}

// AddPrincipal registers (or updates) a principal.
func (l *List) AddPrincipal(p Principal) {
	l.mu.Lock()
	l.principals[p.ID] = p
	l.mu.Unlock()
}

// RemovePrincipal deletes a principal and its grants.
func (l *List) RemovePrincipal(id string) {
	l.mu.Lock()
	delete(l.principals, id)
	delete(l.grants, id)
	l.mu.Unlock()
}

// Principal looks up a registered principal.
func (l *List) Principal(id string) (Principal, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	p, ok := l.principals[id]
	return p, ok
}

// AddGrant installs a grant. The principal must exist.
func (l *List) AddGrant(g Grant) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.principals[g.Principal]; !ok {
		return fmt.Errorf("acl: unknown principal %q", g.Principal)
	}
	l.grants[g.Principal] = append(l.grants[g.Principal], g)
	return nil
}

// RevokeGrants removes every grant of principal for purpose ("*" removes
// all purposes) scoped to owner ("" matches grants of any scope). It
// returns the number revoked. Revocation is immediate — the dynamic control
// Art. 21 objections rely on.
func (l *List) RevokeGrants(principal, purpose, owner string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	gs := l.grants[principal]
	kept := gs[:0]
	n := 0
	for _, g := range gs {
		match := (purpose == "*" || g.Purpose == purpose) &&
			(owner == "" || g.Owner == owner)
		if match {
			n++
			continue
		}
		kept = append(kept, g)
	}
	l.grants[principal] = kept
	return n
}

// Grants returns a copy of principal's grants.
func (l *List) Grants(principal string) []Grant {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Grant(nil), l.grants[principal]...)
}

// Check decides whether principal may perform an operation of class op on
// data owned by owner for the stated purpose.
func (l *List) Check(principal string, op OpClass, owner, purpose string) Decision {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if !l.enforce {
		return Decision{Allowed: true, Reason: "enforcement disabled"}
	}
	p, ok := l.principals[principal]
	if !ok {
		return Decision{Allowed: false, Reason: "unknown principal"}
	}
	switch p.Role {
	case RoleController:
		return Decision{Allowed: true, Reason: "controller"}
	case RoleRegulator:
		if op == OpAudit || op == OpRead {
			return Decision{Allowed: true, Reason: "regulator audit access"}
		}
		return Decision{Allowed: false, Reason: "regulator is read/audit-only"}
	case RoleSubject:
		switch op {
		case OpRights, OpRead:
			if owner == principal {
				return Decision{Allowed: true, Reason: "subject accessing own data"}
			}
			return Decision{Allowed: false, Reason: "subject may only access own data"}
		case OpWrite:
			if owner == principal {
				return Decision{Allowed: true, Reason: "subject writing own data"}
			}
			return Decision{Allowed: false, Reason: "subject may only write own data"}
		default:
			return Decision{Allowed: false, Reason: "subject role forbids " + op.String()}
		}
	case RoleProcessor:
		if op == OpAdmin || op == OpRights || op == OpAudit {
			return Decision{Allowed: false, Reason: "processor role forbids " + op.String()}
		}
		now := l.clk.Now()
		for _, g := range l.grants[principal] {
			if !g.Expires.IsZero() && !g.Expires.After(now) {
				continue
			}
			if g.Purpose != "*" && g.Purpose != purpose {
				continue
			}
			if g.Owner != "" && g.Owner != owner {
				continue
			}
			return Decision{Allowed: true, Reason: "grant " + g.Purpose}
		}
		return Decision{Allowed: false, Reason: "no matching grant"}
	default:
		return Decision{Allowed: false, Reason: "unknown role"}
	}
}

// PurgeExpired removes expired grants and returns how many were removed.
// It exists so long-running servers don't accumulate dead grants; checks
// are correct without it.
func (l *List) PurgeExpired() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.clk.Now()
	n := 0
	for id, gs := range l.grants {
		kept := gs[:0]
		for _, g := range gs {
			if !g.Expires.IsZero() && !g.Expires.After(now) {
				n++
				continue
			}
			kept = append(kept, g)
		}
		l.grants[id] = kept
	}
	return n
}
