package acl

import (
	"testing"
	"time"

	"gdprstore/internal/clock"
)

func newList() (*List, *clock.Virtual) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	return New(vc), vc
}

func TestDefaultDeny(t *testing.T) {
	l, _ := newList()
	d := l.Check("unknown", OpRead, "alice", "billing")
	if d.Allowed {
		t.Fatal("unknown principal allowed")
	}
}

func TestControllerAllowedEverything(t *testing.T) {
	l, _ := newList()
	l.AddPrincipal(Principal{ID: "admin", Role: RoleController})
	for _, op := range []OpClass{OpRead, OpWrite, OpRights, OpAdmin, OpAudit} {
		if d := l.Check("admin", op, "anyone", "any"); !d.Allowed {
			t.Errorf("controller denied %v: %s", op, d.Reason)
		}
	}
}

func TestSubjectOwnDataOnly(t *testing.T) {
	l, _ := newList()
	l.AddPrincipal(Principal{ID: "alice", Role: RoleSubject})
	if d := l.Check("alice", OpRead, "alice", ""); !d.Allowed {
		t.Fatalf("subject denied own read: %s", d.Reason)
	}
	if d := l.Check("alice", OpRights, "alice", ""); !d.Allowed {
		t.Fatalf("subject denied own rights op: %s", d.Reason)
	}
	if d := l.Check("alice", OpWrite, "alice", ""); !d.Allowed {
		t.Fatalf("subject denied own write: %s", d.Reason)
	}
	if d := l.Check("alice", OpRead, "bob", ""); d.Allowed {
		t.Fatal("subject allowed to read another subject's data")
	}
	if d := l.Check("alice", OpAdmin, "alice", ""); d.Allowed {
		t.Fatal("subject allowed admin")
	}
	if d := l.Check("alice", OpAudit, "alice", ""); d.Allowed {
		t.Fatal("subject allowed audit")
	}
}

func TestRegulatorReadAuditOnly(t *testing.T) {
	l, _ := newList()
	l.AddPrincipal(Principal{ID: "dpa", Role: RoleRegulator})
	if d := l.Check("dpa", OpAudit, "", ""); !d.Allowed {
		t.Fatalf("regulator denied audit: %s", d.Reason)
	}
	if d := l.Check("dpa", OpRead, "alice", ""); !d.Allowed {
		t.Fatalf("regulator denied read: %s", d.Reason)
	}
	if d := l.Check("dpa", OpWrite, "alice", ""); d.Allowed {
		t.Fatal("regulator allowed write")
	}
}

func TestProcessorNeedsGrant(t *testing.T) {
	l, _ := newList()
	l.AddPrincipal(Principal{ID: "svc", Role: RoleProcessor})
	if d := l.Check("svc", OpRead, "alice", "billing"); d.Allowed {
		t.Fatal("processor allowed without grant")
	}
	if err := l.AddGrant(Grant{Principal: "svc", Purpose: "billing"}); err != nil {
		t.Fatal(err)
	}
	if d := l.Check("svc", OpRead, "alice", "billing"); !d.Allowed {
		t.Fatalf("processor denied with grant: %s", d.Reason)
	}
	if d := l.Check("svc", OpRead, "alice", "marketing"); d.Allowed {
		t.Fatal("grant leaked across purposes")
	}
	if d := l.Check("svc", OpRights, "alice", "billing"); d.Allowed {
		t.Fatal("processor allowed rights op")
	}
}

func TestGrantScopedToOwner(t *testing.T) {
	l, _ := newList()
	l.AddPrincipal(Principal{ID: "svc", Role: RoleProcessor})
	l.AddGrant(Grant{Principal: "svc", Purpose: "billing", Owner: "alice"})
	if d := l.Check("svc", OpRead, "alice", "billing"); !d.Allowed {
		t.Fatalf("scoped grant denied: %s", d.Reason)
	}
	if d := l.Check("svc", OpRead, "bob", "billing"); d.Allowed {
		t.Fatal("owner-scoped grant leaked to another owner")
	}
}

func TestWildcardPurposeGrant(t *testing.T) {
	l, _ := newList()
	l.AddPrincipal(Principal{ID: "svc", Role: RoleProcessor})
	l.AddGrant(Grant{Principal: "svc", Purpose: "*"})
	if d := l.Check("svc", OpWrite, "bob", "anything"); !d.Allowed {
		t.Fatalf("wildcard grant denied: %s", d.Reason)
	}
}

func TestGrantExpiry(t *testing.T) {
	l, vc := newList()
	l.AddPrincipal(Principal{ID: "svc", Role: RoleProcessor})
	l.AddGrant(Grant{Principal: "svc", Purpose: "billing", Expires: vc.Now().Add(time.Hour)})
	if d := l.Check("svc", OpRead, "alice", "billing"); !d.Allowed {
		t.Fatal("unexpired grant denied")
	}
	vc.Advance(2 * time.Hour)
	if d := l.Check("svc", OpRead, "alice", "billing"); d.Allowed {
		t.Fatal("expired grant still allows (Art. 25 duration bound broken)")
	}
	if n := l.PurgeExpired(); n != 1 {
		t.Fatalf("purged %d, want 1", n)
	}
}

func TestRevokeGrants(t *testing.T) {
	l, _ := newList()
	l.AddPrincipal(Principal{ID: "svc", Role: RoleProcessor})
	l.AddGrant(Grant{Principal: "svc", Purpose: "billing"})
	l.AddGrant(Grant{Principal: "svc", Purpose: "marketing"})
	l.AddGrant(Grant{Principal: "svc", Purpose: "marketing", Owner: "alice"})
	if n := l.RevokeGrants("svc", "marketing", ""); n != 2 {
		t.Fatalf("revoked %d, want 2", n)
	}
	if d := l.Check("svc", OpRead, "alice", "marketing"); d.Allowed {
		t.Fatal("revoked grant still in effect")
	}
	if d := l.Check("svc", OpRead, "alice", "billing"); !d.Allowed {
		t.Fatal("unrelated grant lost")
	}
	if n := l.RevokeGrants("svc", "*", ""); n != 1 {
		t.Fatalf("wildcard revoke = %d, want 1", n)
	}
}

func TestAddGrantUnknownPrincipal(t *testing.T) {
	l, _ := newList()
	if err := l.AddGrant(Grant{Principal: "ghost", Purpose: "x"}); err == nil {
		t.Fatal("grant for unknown principal accepted")
	}
}

func TestEnforcementToggle(t *testing.T) {
	l, _ := newList()
	l.SetEnforce(false)
	if d := l.Check("nobody", OpAdmin, "", ""); !d.Allowed {
		t.Fatal("disabled enforcement still denies")
	}
	if l.Enforcing() {
		t.Fatal("Enforcing() wrong")
	}
	l.SetEnforce(true)
	if d := l.Check("nobody", OpAdmin, "", ""); d.Allowed {
		t.Fatal("re-enabled enforcement allows")
	}
}

func TestRemovePrincipal(t *testing.T) {
	l, _ := newList()
	l.AddPrincipal(Principal{ID: "svc", Role: RoleProcessor})
	l.AddGrant(Grant{Principal: "svc", Purpose: "billing"})
	l.RemovePrincipal("svc")
	if _, ok := l.Principal("svc"); ok {
		t.Fatal("principal survives removal")
	}
	if d := l.Check("svc", OpRead, "a", "billing"); d.Allowed {
		t.Fatal("removed principal still allowed")
	}
	if len(l.Grants("svc")) != 0 {
		t.Fatal("grants survive principal removal")
	}
}

func TestGrantsReturnsCopy(t *testing.T) {
	l, _ := newList()
	l.AddPrincipal(Principal{ID: "svc", Role: RoleProcessor})
	l.AddGrant(Grant{Principal: "svc", Purpose: "billing"})
	gs := l.Grants("svc")
	gs[0].Purpose = "tampered"
	if l.Grants("svc")[0].Purpose != "billing" {
		t.Fatal("Grants leaked internal slice")
	}
}

func TestRoleAndOpStrings(t *testing.T) {
	if RoleSubject.String() != "subject" || RoleController.String() != "controller" ||
		RoleProcessor.String() != "processor" || RoleRegulator.String() != "regulator" {
		t.Fatal("role names wrong")
	}
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpRights.String() != "rights" ||
		OpAdmin.String() != "admin" || OpAudit.String() != "audit" {
		t.Fatal("op names wrong")
	}
}
