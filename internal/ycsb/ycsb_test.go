package ycsb

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"gdprstore/internal/acl"
	"gdprstore/internal/core"
)

func TestZipfianRange(t *testing.T) {
	g := NewZipfian(1000)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := g.Next(r)
		if v < 0 || v >= 1000 {
			t.Fatalf("zipfian out of range: %d", v)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	// With θ=0.99 over 1000 items, item 0 must receive far more than the
	// uniform share (0.1%) of draws — the defining property of the
	// request distribution Figure 1 uses.
	g := NewZipfian(1000)
	r := rand.New(rand.NewSource(2))
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if g.Next(r) == 0 {
			hits++
		}
	}
	share := float64(hits) / draws
	if share < 0.05 {
		t.Fatalf("item 0 share = %.4f, want >> uniform 0.001", share)
	}
}

func TestZipfianGrow(t *testing.T) {
	g := NewZipfian(10)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		g.Grow()
	}
	for i := 0; i < 1000; i++ {
		if v := g.Next(r); v < 0 || v >= 110 {
			t.Fatalf("post-grow out of range: %d", v)
		}
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	g := NewScrambledZipfian(1000)
	r := rand.New(rand.NewSource(4))
	counts := make(map[int64]int)
	for i := 0; i < 100000; i++ {
		counts[g.Next(r)]++
	}
	// Find the hottest item: it must NOT be item 0 or 1 systematically —
	// scrambling moves popularity to hashed positions.
	type kv struct {
		k int64
		n int
	}
	var top []kv
	for k, n := range counts {
		top = append(top, kv{k, n})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].n > top[j].n })
	if top[0].k == 0 && top[1].k == 1 {
		t.Fatal("scrambling did not move hot keys")
	}
	// Still skewed: the hottest item beats the uniform share by 10x.
	if float64(top[0].n)/100000 < 0.01 {
		t.Fatalf("scrambled distribution lost its skew: top share %.4f", float64(top[0].n)/100000)
	}
}

func TestUniformCoverage(t *testing.T) {
	g := NewUniform(100)
	r := rand.New(rand.NewSource(5))
	counts := make([]int, 100)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[g.Next(r)]++
	}
	// Chi-squared-ish sanity: every item within 3x of expectation.
	exp := float64(draws) / 100
	for i, n := range counts {
		if math.Abs(float64(n)-exp) > 3*exp {
			t.Fatalf("item %d count %d far from uniform expectation %.0f", i, n, exp)
		}
	}
}

func TestLatestSkewsToRecent(t *testing.T) {
	g := NewLatest(1000)
	r := rand.New(rand.NewSource(6))
	recent := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		if g.Next(r) >= 900 {
			recent++
		}
	}
	if float64(recent)/draws < 0.5 {
		t.Fatalf("latest distribution not recent-skewed: %.3f in top decile", float64(recent)/draws)
	}
	// After growth, the newest items get the mass.
	for i := 0; i < 500; i++ {
		g.Grow()
	}
	newest := 0
	for i := 0; i < draws; i++ {
		if g.Next(r) >= 1000 {
			newest++
		}
	}
	if newest == 0 {
		t.Fatal("grown items never drawn")
	}
}

func TestWorkloadValidation(t *testing.T) {
	for name, w := range CoreWorkloads {
		if err := w.Validate(); err != nil {
			t.Errorf("workload %s invalid: %v", name, err)
		}
	}
	bad := Workload{Name: "X", ReadProportion: 0.5, RequestDistribution: DistZipfian}
	if bad.Validate() == nil {
		t.Fatal("proportions summing to 0.5 accepted")
	}
	badDist := Workload{Name: "X", ReadProportion: 1, RequestDistribution: "exponential"}
	if badDist.Validate() == nil {
		t.Fatal("unknown distribution accepted")
	}
	noScanLen := Workload{Name: "X", ScanProportion: 1, RequestDistribution: DistZipfian}
	if noScanLen.Validate() == nil {
		t.Fatal("scan workload without MaxScanLength accepted")
	}
}

func TestChooseOpProportions(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	counts := map[OpType]int{}
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[WorkloadB.chooseOp(r)]++
	}
	readShare := float64(counts[OpRead]) / draws
	if readShare < 0.94 || readShare > 0.96 {
		t.Fatalf("workload B read share = %.4f, want ≈0.95", readShare)
	}
}

func TestKeyNameSortsByIndex(t *testing.T) {
	if !(KeyName(9) < KeyName(10) && KeyName(999) < KeyName(1000)) {
		t.Fatal("key names do not sort numerically")
	}
}

func baselineFactory(t *testing.T) (func(int) (DB, error), *core.Store) {
	t.Helper()
	st, err := core.Open(core.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return func(int) (DB, error) { return NewEmbeddedDB(st), nil }, st
}

func TestLoadPhase(t *testing.T) {
	factory, st := baselineFactory(t)
	res, err := Load(Config{
		Workload: WorkloadA, RecordCount: 1000, Workers: 4, Factory: factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 1000 || res.Errors != 0 {
		t.Fatalf("load result: %+v", res)
	}
	if st.Engine().Len() != 1000 {
		t.Fatalf("engine has %d keys after load", st.Engine().Len())
	}
	if res.PerOp["INSERT"].Count != 1000 {
		t.Fatalf("insert histogram count = %d", res.PerOp["INSERT"].Count)
	}
	if res.Throughput <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestRunPhaseAllWorkloads(t *testing.T) {
	for _, name := range []string{"A", "B", "C", "D", "E", "F"} {
		name := name
		t.Run(name, func(t *testing.T) {
			factory, _ := baselineFactory(t)
			w := CoreWorkloads[name]
			if _, err := Load(Config{Workload: w, RecordCount: 500, Workers: 2, Factory: factory}); err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{
				Workload: w, RecordCount: 500, OperationCount: 2000,
				Workers: 2, Factory: factory,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Errors != 0 {
				t.Fatalf("workload %s errors: %d\n%s", name, res.Errors, res)
			}
			var total uint64
			for _, s := range res.PerOp {
				total += s.Count
			}
			if total < uint64(res.Ops) {
				t.Fatalf("histograms cover %d < %d ops", total, res.Ops)
			}
		})
	}
}

func TestRunGDPRAdapter(t *testing.T) {
	cfg := core.Strict("")
	st, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.ACL().AddPrincipal(acl.Principal{ID: "bench", Role: acl.RoleController})
	ctx := core.Ctx{Actor: "bench", Purpose: "benchmark"}
	opts := core.PutOptions{Owner: "subject", Purposes: []string{"benchmark"}, TTL: 3600e9}
	factory := func(int) (DB, error) { return NewGDPRDB(st, ctx, opts), nil }

	if _, err := Load(Config{Workload: WorkloadA, RecordCount: 200, Factory: factory}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Workload: WorkloadA, RecordCount: 200, OperationCount: 1000, Factory: factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("GDPR run errors: %d", res.Errors)
	}
	// Strict config audits every op: the trail must have grown past the
	// op count (load + run).
	if st.Trail().Seq() < 1200 {
		t.Fatalf("audit seq = %d, want >= 1200 (every op logged)", st.Trail().Seq())
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		factory, _ := baselineFactory(t)
		Load(Config{Workload: WorkloadA, RecordCount: 100, Factory: factory, Seed: 99})
		res, err := Run(Config{
			Workload: WorkloadA, RecordCount: 100, OperationCount: 500,
			Factory: factory, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.PerOp["READ"].Count != b.PerOp["READ"].Count {
		t.Fatalf("same seed produced different op mixes: %d vs %d",
			a.PerOp["READ"].Count, b.PerOp["READ"].Count)
	}
}

func TestRunRequiresFactory(t *testing.T) {
	if _, err := Run(Config{Workload: WorkloadA, OperationCount: 1}); err == nil {
		t.Fatal("missing factory accepted")
	}
	if _, err := Load(Config{Workload: WorkloadA, RecordCount: 1}); err == nil {
		t.Fatal("missing factory accepted")
	}
}

func TestOpTypeStrings(t *testing.T) {
	want := map[OpType]string{
		OpRead: "READ", OpUpdate: "UPDATE", OpInsert: "INSERT",
		OpScan: "SCAN", OpReadModifyWrite: "READ-MODIFY-WRITE",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%v = %q", op, op.String())
		}
	}
}
