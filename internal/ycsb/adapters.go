package ycsb

import (
	"errors"

	"gdprstore/internal/client"
	"gdprstore/internal/core"
)

// EmbeddedDB drives a core.Store in-process through the baseline
// (non-GDPR) path — Figure 1's "Unmodified" configuration when the store
// is opened with core.Baseline().
type EmbeddedDB struct {
	store *core.Store
}

// NewEmbeddedDB wraps st. Close does not close the store (shared across
// workers).
func NewEmbeddedDB(st *core.Store) *EmbeddedDB { return &EmbeddedDB{store: st} }

// Read implements DB. Missing keys are not errors: YCSB counts them as
// completed reads, and zipfian+inserts make occasional misses expected.
func (e *EmbeddedDB) Read(key string) error {
	_, err := e.store.Get(core.Ctx{}, key)
	if err != nil && !errors.Is(err, core.ErrNotFound) {
		return err
	}
	return nil
}

// Update implements DB.
func (e *EmbeddedDB) Update(key string, value []byte) error {
	return e.store.Put(core.Ctx{}, key, value, core.PutOptions{})
}

// Insert implements DB.
func (e *EmbeddedDB) Insert(key string, value []byte) error {
	return e.store.Put(core.Ctx{}, key, value, core.PutOptions{})
}

// Scan implements DB using the engine's ordered scan.
func (e *EmbeddedDB) Scan(startKey string, count int) error {
	n := 0
	e.store.Engine().RangeKeys(func(k string, v []byte) bool {
		if k >= startKey {
			n++
		}
		return n < count
	})
	return nil
}

// Close implements DB (no-op; the store is shared).
func (e *EmbeddedDB) Close() error { return nil }

// GDPRDB drives the compliance path of a core.Store: every operation
// carries an actor and purpose, records carry owner/purpose/TTL metadata,
// and the configured audit/encryption/expiry machinery is on the hot path.
type GDPRDB struct {
	store *core.Store
	ctx   core.Ctx
	opts  core.PutOptions
}

// NewGDPRDB wraps st with the given operation context and write metadata.
func NewGDPRDB(st *core.Store, ctx core.Ctx, opts core.PutOptions) *GDPRDB {
	return &GDPRDB{store: st, ctx: ctx, opts: opts}
}

// Read implements DB.
func (g *GDPRDB) Read(key string) error {
	_, err := g.store.Get(g.ctx, key)
	if err != nil && !errors.Is(err, core.ErrNotFound) {
		return err
	}
	return nil
}

// Update implements DB.
func (g *GDPRDB) Update(key string, value []byte) error {
	return g.store.Put(g.ctx, key, value, g.opts)
}

// Insert implements DB.
func (g *GDPRDB) Insert(key string, value []byte) error {
	return g.store.Put(g.ctx, key, value, g.opts)
}

// Scan implements DB.
func (g *GDPRDB) Scan(startKey string, count int) error {
	n := 0
	g.store.Engine().RangeKeys(func(k string, v []byte) bool {
		if k >= startKey {
			n++
		}
		return n < count
	})
	return nil
}

// Close implements DB (no-op; the store is shared).
func (g *GDPRDB) Close() error { return nil }

// NetworkDB drives a gdprstore server over TCP (optionally through the
// TLS tunnel), the topology the paper's YCSB deployment used against
// Redis.
type NetworkDB struct {
	c *client.Client
}

// DialNetworkDB opens a connection to addr.
func DialNetworkDB(addr string) (*NetworkDB, error) {
	c, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &NetworkDB{c: c}, nil
}

// Read implements DB.
func (n *NetworkDB) Read(key string) error {
	_, err := n.c.Get(key)
	if errors.Is(err, client.ErrNil) {
		return nil
	}
	return err
}

// Update implements DB.
func (n *NetworkDB) Update(key string, value []byte) error {
	return n.c.Set(key, value)
}

// Insert implements DB.
func (n *NetworkDB) Insert(key string, value []byte) error {
	return n.c.Set(key, value)
}

// Scan implements DB.
func (n *NetworkDB) Scan(startKey string, count int) error {
	// SCAN-by-prefix from an arbitrary start key is approximated with a
	// MATCH over the shared prefix; YCSB only measures the latency of
	// fetching ~count keys, which this preserves.
	_, _, err := n.c.Scan(0, "user*", count)
	return err
}

// Close implements DB.
func (n *NetworkDB) Close() error { return n.c.Close() }
