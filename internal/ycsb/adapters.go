package ycsb

import (
	"context"
	"errors"

	"gdprstore/internal/core"
	"gdprstore/pkg/gdprkv"
)

// EmbeddedDB drives a core.Store in-process through the baseline
// (non-GDPR) path — Figure 1's "Unmodified" configuration when the store
// is opened with core.Baseline().
type EmbeddedDB struct {
	store *core.Store
}

// NewEmbeddedDB wraps st. Close does not close the store (shared across
// workers).
func NewEmbeddedDB(st *core.Store) *EmbeddedDB { return &EmbeddedDB{store: st} }

// Read implements DB. Missing keys are not errors: YCSB counts them as
// completed reads, and zipfian+inserts make occasional misses expected.
func (e *EmbeddedDB) Read(key string) error {
	_, err := e.store.Get(core.Ctx{}, key)
	if err != nil && !errors.Is(err, core.ErrNotFound) {
		return err
	}
	return nil
}

// Update implements DB.
func (e *EmbeddedDB) Update(key string, value []byte) error {
	return e.store.Put(core.Ctx{}, key, value, core.PutOptions{})
}

// Insert implements DB.
func (e *EmbeddedDB) Insert(key string, value []byte) error {
	return e.store.Put(core.Ctx{}, key, value, core.PutOptions{})
}

// Scan implements DB using the engine's ordered scan.
func (e *EmbeddedDB) Scan(startKey string, count int) error {
	n := 0
	e.store.Engine().RangeKeys(func(k string, v []byte) bool {
		if k >= startKey {
			n++
		}
		return n < count
	})
	return nil
}

// Close implements DB (no-op; the store is shared).
func (e *EmbeddedDB) Close() error { return nil }

// GDPRDB drives the compliance path of a core.Store: every operation
// carries an actor and purpose, records carry owner/purpose/TTL metadata,
// and the configured audit/encryption/expiry machinery is on the hot path.
type GDPRDB struct {
	store *core.Store
	ctx   core.Ctx
	opts  core.PutOptions
}

// NewGDPRDB wraps st with the given operation context and write metadata.
func NewGDPRDB(st *core.Store, ctx core.Ctx, opts core.PutOptions) *GDPRDB {
	return &GDPRDB{store: st, ctx: ctx, opts: opts}
}

// Read implements DB.
func (g *GDPRDB) Read(key string) error {
	_, err := g.store.Get(g.ctx, key)
	if err != nil && !errors.Is(err, core.ErrNotFound) {
		return err
	}
	return nil
}

// Update implements DB.
func (g *GDPRDB) Update(key string, value []byte) error {
	return g.store.Put(g.ctx, key, value, g.opts)
}

// Insert implements DB.
func (g *GDPRDB) Insert(key string, value []byte) error {
	return g.store.Put(g.ctx, key, value, g.opts)
}

// Scan implements DB.
func (g *GDPRDB) Scan(startKey string, count int) error {
	n := 0
	g.store.Engine().RangeKeys(func(k string, v []byte) bool {
		if k >= startKey {
			n++
		}
		return n < count
	})
	return nil
}

// Close implements DB (no-op; the store is shared).
func (g *GDPRDB) Close() error { return nil }

// NetworkDB drives a gdprstore server over TCP (optionally through the
// TLS tunnel), the topology the paper's YCSB deployment used against
// Redis. It wraps a pkg/gdprkv client, which may be private to this
// adapter (DialNetworkDB — one connection per worker, the classic YCSB
// thread model) or shared across workers (NewNetworkDB — one pooled,
// replica-aware client saturated by all workers).
type NetworkDB struct {
	c      *gdprkv.Client
	shared bool
}

// DialNetworkDB opens a dedicated single-connection client to addr.
func DialNetworkDB(addr string) (*NetworkDB, error) {
	c, err := gdprkv.Dial(context.Background(), addr, gdprkv.WithPoolSize(1))
	if err != nil {
		return nil, err
	}
	return &NetworkDB{c: c}, nil
}

// NewNetworkDB wraps a shared client; Close leaves it open (the caller
// owns its lifecycle).
func NewNetworkDB(c *gdprkv.Client) *NetworkDB { return &NetworkDB{c: c, shared: true} }

// Read implements DB.
func (n *NetworkDB) Read(key string) error {
	_, err := n.c.Get(context.Background(), key)
	if errors.Is(err, gdprkv.ErrNotFound) {
		return nil
	}
	return err
}

// Update implements DB.
func (n *NetworkDB) Update(key string, value []byte) error {
	return n.c.Set(context.Background(), key, value)
}

// Insert implements DB.
func (n *NetworkDB) Insert(key string, value []byte) error {
	return n.c.Set(context.Background(), key, value)
}

// Scan implements DB.
func (n *NetworkDB) Scan(startKey string, count int) error {
	// SCAN-by-prefix from an arbitrary start key is approximated with a
	// MATCH over the shared prefix; YCSB only measures the latency of
	// fetching ~count keys, which this preserves.
	_, _, err := n.c.Scan(context.Background(), 0, "user*", count)
	return err
}

// Close implements DB.
func (n *NetworkDB) Close() error {
	if n.shared {
		return nil
	}
	return n.c.Close()
}

// --- batching adapters (-batch N) ---
//
// The batch adapters group operations into the batch command family
// (MSET/MGET over the wire, PutBatch/GetBatch in-process) so the
// benchmarks can quantify how much of the paper's 2–5× per-operation
// compliance overhead amortises away. Reads and writes are buffered
// separately and flushed when a buffer reaches the batch size (and on
// Close); the flushing operation carries the whole batch's latency, so
// per-op histograms report amortised cost while throughput stays exact.

// BatchDB drives a core.Store through the batch API, grouping up to N
// operations per store call. With a baseline store this exercises the raw
// engine's SetBatch/GetBatch; with a compliant store, the amortised
// compliance path (one lock, one ACL decision, one AOF append, one audit
// record per batch).
type BatchDB struct {
	store *core.Store
	ctx   core.Ctx
	opts  core.PutOptions
	n     int

	wbuf []core.BatchEntry
	rbuf []string
}

// NewBatchDB wraps st with batch size n (n < 2 behaves like batch 1).
func NewBatchDB(st *core.Store, ctx core.Ctx, opts core.PutOptions, n int) *BatchDB {
	if n < 1 {
		n = 1
	}
	return &BatchDB{store: st, ctx: ctx, opts: opts, n: n}
}

// Read implements DB, buffering the key and flushing a GetBatch when the
// buffer is full.
func (b *BatchDB) Read(key string) error {
	b.rbuf = append(b.rbuf, key)
	if len(b.rbuf) < b.n {
		return nil
	}
	return b.flushReads()
}

func (b *BatchDB) flushReads() error {
	if len(b.rbuf) == 0 {
		return nil
	}
	results, err := b.store.GetBatch(b.ctx, b.rbuf)
	b.rbuf = b.rbuf[:0]
	if err != nil {
		return err
	}
	for _, r := range results {
		if r.Err != nil && !errors.Is(r.Err, core.ErrNotFound) {
			return r.Err
		}
	}
	return nil
}

// Update implements DB, buffering the pair and flushing a PutBatch when
// the buffer is full.
func (b *BatchDB) Update(key string, value []byte) error {
	b.wbuf = append(b.wbuf, core.BatchEntry{Key: key, Value: append([]byte(nil), value...)})
	if len(b.wbuf) < b.n {
		return nil
	}
	return b.flushWrites()
}

func (b *BatchDB) flushWrites() error {
	if len(b.wbuf) == 0 {
		return nil
	}
	err := b.store.PutBatch(b.ctx, b.wbuf, b.opts)
	b.wbuf = b.wbuf[:0]
	return err
}

// Insert implements DB.
func (b *BatchDB) Insert(key string, value []byte) error { return b.Update(key, value) }

// Scan implements DB.
func (b *BatchDB) Scan(startKey string, count int) error {
	n := 0
	b.store.Engine().RangeKeys(func(k string, v []byte) bool {
		if k >= startKey {
			n++
		}
		return n < count
	})
	return nil
}

// Close flushes both buffers (the store itself is shared, not closed).
func (b *BatchDB) Close() error {
	if err := b.flushWrites(); err != nil {
		return err
	}
	return b.flushReads()
}

// BatchNetworkDB drives a gdprstore server over TCP through MSET/MGET,
// grouping up to N operations per round trip.
type BatchNetworkDB struct {
	c      *gdprkv.Client
	n      int
	shared bool

	wkeys []string
	wvals [][]byte
	rkeys []string
}

// DialBatchNetworkDB opens a dedicated connection to addr with batch
// size n.
func DialBatchNetworkDB(addr string, n int) (*BatchNetworkDB, error) {
	c, err := gdprkv.Dial(context.Background(), addr, gdprkv.WithPoolSize(1))
	if err != nil {
		return nil, err
	}
	if n < 1 {
		n = 1
	}
	return &BatchNetworkDB{c: c, n: n}, nil
}

// NewBatchNetworkDB wraps a shared client with batch size n; Close
// flushes the buffers but leaves the client open.
func NewBatchNetworkDB(c *gdprkv.Client, n int) *BatchNetworkDB {
	if n < 1 {
		n = 1
	}
	return &BatchNetworkDB{c: c, n: n, shared: true}
}

// Read implements DB, buffering the key and flushing an MGET when the
// buffer is full.
func (b *BatchNetworkDB) Read(key string) error {
	b.rkeys = append(b.rkeys, key)
	if len(b.rkeys) < b.n {
		return nil
	}
	return b.flushReads()
}

func (b *BatchNetworkDB) flushReads() error {
	if len(b.rkeys) == 0 {
		return nil
	}
	_, err := b.c.MGet(context.Background(), b.rkeys...)
	b.rkeys = b.rkeys[:0]
	return err
}

// Update implements DB, buffering the pair and flushing an MSET when the
// buffer is full.
func (b *BatchNetworkDB) Update(key string, value []byte) error {
	b.wkeys = append(b.wkeys, key)
	b.wvals = append(b.wvals, append([]byte(nil), value...))
	if len(b.wkeys) < b.n {
		return nil
	}
	return b.flushWrites()
}

func (b *BatchNetworkDB) flushWrites() error {
	if len(b.wkeys) == 0 {
		return nil
	}
	err := b.c.MSet(context.Background(), b.wkeys, b.wvals)
	b.wkeys = b.wkeys[:0]
	b.wvals = b.wvals[:0]
	return err
}

// Insert implements DB.
func (b *BatchNetworkDB) Insert(key string, value []byte) error { return b.Update(key, value) }

// Scan implements DB.
func (b *BatchNetworkDB) Scan(startKey string, count int) error {
	_, _, err := b.c.Scan(context.Background(), 0, "user*", count)
	return err
}

// Close flushes both buffers and, for a dedicated client, releases it.
func (b *BatchNetworkDB) Close() error {
	werr := b.flushWrites()
	rerr := b.flushReads()
	var cerr error
	if !b.shared {
		cerr = b.c.Close()
	}
	if werr != nil {
		return werr
	}
	if rerr != nil {
		return rerr
	}
	return cerr
}

// PipelineNetworkDB drives a gdprstore server through an explicit
// gdprkv.Pipeline: operations queue client-side in arrival order (reads
// and writes interleaved, unlike the batch adapters' separate buffers)
// and flush as one pipelined exchange every N operations. The flushing
// operation carries the round trip's latency; throughput measures the
// amortised cost — the paper's Redis pipelining configuration.
type PipelineNetworkDB struct {
	c      *gdprkv.Client
	p      *gdprkv.Pipeline
	n      int
	shared bool
}

// DialPipelineNetworkDB opens a dedicated single-connection client to
// addr with pipeline depth n (n < 2 behaves like depth 1).
func DialPipelineNetworkDB(addr string, n int) (*PipelineNetworkDB, error) {
	c, err := gdprkv.Dial(context.Background(), addr, gdprkv.WithPoolSize(1))
	if err != nil {
		return nil, err
	}
	if n < 1 {
		n = 1
	}
	return &PipelineNetworkDB{c: c, p: c.Pipeline(), n: n}, nil
}

// NewPipelineNetworkDB wraps a shared client with pipeline depth n;
// Close flushes the queue but leaves the client open.
func NewPipelineNetworkDB(c *gdprkv.Client, n int) *PipelineNetworkDB {
	if n < 1 {
		n = 1
	}
	return &PipelineNetworkDB{c: c, p: c.Pipeline(), n: n, shared: true}
}

func (p *PipelineNetworkDB) maybeFlush() error {
	if p.p.Len() < p.n {
		return nil
	}
	return p.flush()
}

func (p *PipelineNetworkDB) flush() error {
	results, err := p.p.Exec(context.Background())
	if err != nil {
		return err
	}
	for _, r := range results {
		if r.Err != nil && !errors.Is(r.Err, gdprkv.ErrNotFound) {
			return r.Err
		}
	}
	return nil
}

// Read implements DB, queueing a GET.
func (p *PipelineNetworkDB) Read(key string) error {
	p.p.Get(key)
	return p.maybeFlush()
}

// Update implements DB, queueing a SET.
func (p *PipelineNetworkDB) Update(key string, value []byte) error {
	p.p.Set(key, append([]byte(nil), value...))
	return p.maybeFlush()
}

// Insert implements DB.
func (p *PipelineNetworkDB) Insert(key string, value []byte) error {
	return p.Update(key, value)
}

// Scan implements DB (scans don't pipeline: the cursor protocol is a
// round-trip conversation).
func (p *PipelineNetworkDB) Scan(startKey string, count int) error {
	if err := p.flush(); err != nil {
		return err
	}
	_, _, err := p.c.Scan(context.Background(), 0, "user*", count)
	return err
}

// Close flushes the queue and, for a dedicated client, releases it.
func (p *PipelineNetworkDB) Close() error {
	ferr := p.flush()
	var cerr error
	if !p.shared {
		cerr = p.c.Close()
	}
	if ferr != nil {
		return ferr
	}
	return cerr
}
