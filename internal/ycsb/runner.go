package ycsb

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gdprstore/internal/metrics"
)

// DB is the storage interface the benchmark drives — the same four
// operations the YCSB core workloads issue. Implementations live in
// adapters.go (embedded engine, compliance layer, network client).
type DB interface {
	Read(key string) error
	Update(key string, value []byte) error
	Insert(key string, value []byte) error
	Scan(startKey string, count int) error
	Close() error
}

// Config parameterises one benchmark phase.
type Config struct {
	// Workload is the core workload to run.
	Workload Workload
	// RecordCount is the number of records loaded before the run phase
	// (YCSB recordcount).
	RecordCount int64
	// OperationCount is the number of operations in the run phase (the
	// paper uses 2M).
	OperationCount int64
	// ValueSize is the record payload size in bytes (YCSB's default
	// record is ~1 KB; default 1000).
	ValueSize int
	// Workers is the number of concurrent clients (YCSB threads);
	// default 1.
	Workers int
	// Seed makes the run deterministic; 0 means seed 1.
	Seed int64
	// Factory opens one DB handle per worker.
	Factory func(worker int) (DB, error)
}

func (c *Config) defaults() {
	if c.ValueSize <= 0 {
		c.ValueSize = 1000
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Result is one phase's measurements, in the shape of a YCSB report.
type Result struct {
	// Workload is the workload letter, Phase is "load" or "run".
	Workload string
	Phase    string
	// Ops completed, wall-clock Elapsed, and derived Throughput (op/s).
	Ops        uint64
	Elapsed    time.Duration
	Throughput float64
	// PerOp holds latency summaries keyed by operation name.
	PerOp map[string]metrics.Snapshot
	// Errors counts failed operations (they also appear in PerOp).
	Errors uint64
}

// String formats the result like a YCSB summary block.
func (r Result) String() string {
	s := fmt.Sprintf("[%s/%s] ops=%d elapsed=%v throughput=%.0f op/s errors=%d",
		r.Workload, r.Phase, r.Ops, r.Elapsed.Round(time.Millisecond), r.Throughput, r.Errors)
	for name, snap := range r.PerOp {
		s += fmt.Sprintf("\n  %-17s %s", name, snap.String())
	}
	return s
}

// Load runs the load phase: RecordCount sequential inserts split across
// workers. It corresponds to Figure 1's "Load-A" and "Load-E" bars.
func Load(cfg Config) (Result, error) {
	cfg.defaults()
	if cfg.Factory == nil {
		return Result{}, errors.New("ycsb: no DB factory")
	}
	hist := metrics.NewHistogram()
	var errs atomic.Uint64
	var next atomic.Int64

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Workers)
	for wi := 0; wi < cfg.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			db, err := cfg.Factory(wi)
			if err != nil {
				errCh <- err
				return
			}
			// Close flushes any partial batch a batching adapter still
			// buffers; a failure there is lost writes, not cleanup noise.
			defer func() {
				if cerr := db.Close(); cerr != nil {
					errs.Add(1)
				}
			}()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(wi)))
			val := make([]byte, cfg.ValueSize)
			for {
				i := next.Add(1) - 1
				if i >= cfg.RecordCount {
					return
				}
				rng.Read(val)
				t0 := time.Now()
				if err := db.Insert(KeyName(i), val); err != nil {
					errs.Add(1)
				}
				hist.Record(time.Since(t0))
			}
		}(wi)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return Result{}, err
	}
	elapsed := time.Since(start)
	res := Result{
		Workload:   cfg.Workload.Name,
		Phase:      "load",
		Ops:        uint64(cfg.RecordCount),
		Elapsed:    elapsed,
		Throughput: float64(cfg.RecordCount) / elapsed.Seconds(),
		PerOp:      map[string]metrics.Snapshot{"INSERT": hist.Snapshot()},
		Errors:     errs.Load(),
	}
	return res, nil
}

// Run executes the run phase: OperationCount operations drawn from the
// workload's mix and key distribution.
func Run(cfg Config) (Result, error) {
	cfg.defaults()
	if cfg.Factory == nil {
		return Result{}, errors.New("ycsb: no DB factory")
	}
	if err := cfg.Workload.Validate(); err != nil {
		return Result{}, err
	}

	var chooser Growable
	switch cfg.Workload.RequestDistribution {
	case DistUniform:
		chooser = NewUniform(cfg.RecordCount)
	case DistLatest:
		chooser = NewLatest(cfg.RecordCount)
	default:
		chooser = NewScrambledZipfian(cfg.RecordCount)
	}
	var insertSeq atomic.Int64
	insertSeq.Store(cfg.RecordCount)

	hists := map[OpType]*metrics.Histogram{
		OpRead: metrics.NewHistogram(), OpUpdate: metrics.NewHistogram(),
		OpInsert: metrics.NewHistogram(), OpScan: metrics.NewHistogram(),
		OpReadModifyWrite: metrics.NewHistogram(),
	}
	var errs, done atomic.Uint64

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Workers)
	for wi := 0; wi < cfg.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			db, err := cfg.Factory(wi)
			if err != nil {
				errCh <- err
				return
			}
			// As in Load: Close may flush a batching adapter's tail.
			defer func() {
				if cerr := db.Close(); cerr != nil {
					errs.Add(1)
				}
			}()
			rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(wi)))
			val := make([]byte, cfg.ValueSize)
			for {
				if done.Add(1) > uint64(cfg.OperationCount) {
					return
				}
				op := cfg.Workload.chooseOp(rng)
				var key string
				if op == OpInsert {
					key = KeyName(insertSeq.Add(1) - 1)
				} else {
					key = KeyName(chooser.Next(rng))
				}
				rng.Read(val[:16]) // cheap per-op variation
				t0 := time.Now()
				var oerr error
				switch op {
				case OpRead:
					oerr = db.Read(key)
				case OpUpdate:
					oerr = db.Update(key, val)
				case OpInsert:
					oerr = db.Insert(key, val)
				case OpScan:
					n := 1 + rng.Intn(cfg.Workload.MaxScanLength)
					oerr = db.Scan(key, n)
				case OpReadModifyWrite:
					if oerr = db.Read(key); oerr == nil {
						oerr = db.Update(key, val)
					}
				}
				hists[op].Record(time.Since(t0))
				if oerr != nil {
					errs.Add(1)
				} else if op == OpInsert {
					chooser.Grow()
				}
			}
		}(wi)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return Result{}, err
	}
	elapsed := time.Since(start)

	perOp := make(map[string]metrics.Snapshot)
	for op, h := range hists {
		if h.Count() > 0 {
			perOp[op.String()] = h.Snapshot()
		}
	}
	return Result{
		Workload:   cfg.Workload.Name,
		Phase:      "run",
		Ops:        uint64(cfg.OperationCount),
		Elapsed:    elapsed,
		Throughput: float64(cfg.OperationCount) / elapsed.Seconds(),
		PerOp:      perOp,
		Errors:     errs.Load(),
	}, nil
}
