package ycsb

import (
	"fmt"
	"math/rand"
)

// OpType is one YCSB operation kind.
type OpType int

// Operation kinds.
const (
	OpRead OpType = iota
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

// String returns the YCSB report name of the operation.
func (o OpType) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	case OpReadModifyWrite:
		return "READ-MODIFY-WRITE"
	default:
		return "UNKNOWN"
	}
}

// Distribution names accepted by Workload.RequestDistribution.
const (
	DistZipfian = "zipfian"
	DistUniform = "uniform"
	DistLatest  = "latest"
)

// Workload is a YCSB core-workload definition.
type Workload struct {
	// Name is the workload letter ("A".."F").
	Name string
	// Proportions of each operation; they must sum to 1.
	ReadProportion            float64
	UpdateProportion          float64
	InsertProportion          float64
	ScanProportion            float64
	ReadModifyWriteProportion float64
	// RequestDistribution chooses keys: zipfian, uniform, or latest.
	RequestDistribution string
	// MaxScanLength bounds scan sizes (workload E); lengths are uniform
	// in [1, MaxScanLength].
	MaxScanLength int
}

// Core workloads A–F with YCSB's canonical parameters.
var (
	// WorkloadA: update heavy, 50/50 read/update, zipfian.
	WorkloadA = Workload{Name: "A", ReadProportion: 0.5, UpdateProportion: 0.5, RequestDistribution: DistZipfian}
	// WorkloadB: read mostly, 95/5, zipfian.
	WorkloadB = Workload{Name: "B", ReadProportion: 0.95, UpdateProportion: 0.05, RequestDistribution: DistZipfian}
	// WorkloadC: read only, zipfian.
	WorkloadC = Workload{Name: "C", ReadProportion: 1.0, RequestDistribution: DistZipfian}
	// WorkloadD: read latest, 95/5 read/insert.
	WorkloadD = Workload{Name: "D", ReadProportion: 0.95, InsertProportion: 0.05, RequestDistribution: DistLatest}
	// WorkloadE: short ranges, 95/5 scan/insert, max 100.
	WorkloadE = Workload{Name: "E", ScanProportion: 0.95, InsertProportion: 0.05, RequestDistribution: DistZipfian, MaxScanLength: 100}
	// WorkloadF: read-modify-write, 50/50 read/RMW, zipfian.
	WorkloadF = Workload{Name: "F", ReadProportion: 0.5, ReadModifyWriteProportion: 0.5, RequestDistribution: DistZipfian}
)

// CoreWorkloads maps workload letters to definitions.
var CoreWorkloads = map[string]Workload{
	"A": WorkloadA, "B": WorkloadB, "C": WorkloadC,
	"D": WorkloadD, "E": WorkloadE, "F": WorkloadF,
}

// Validate checks the proportions sum to 1 (±1e-9).
func (w Workload) Validate() error {
	sum := w.ReadProportion + w.UpdateProportion + w.InsertProportion +
		w.ScanProportion + w.ReadModifyWriteProportion
	if diff := sum - 1.0; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("ycsb: workload %s proportions sum to %v", w.Name, sum)
	}
	if w.ScanProportion > 0 && w.MaxScanLength <= 0 {
		return fmt.Errorf("ycsb: workload %s scans but MaxScanLength unset", w.Name)
	}
	switch w.RequestDistribution {
	case DistZipfian, DistUniform, DistLatest:
	default:
		return fmt.Errorf("ycsb: workload %s unknown distribution %q", w.Name, w.RequestDistribution)
	}
	return nil
}

// chooseOp picks the next operation type per the proportions.
func (w Workload) chooseOp(r *rand.Rand) OpType {
	f := r.Float64()
	if f < w.ReadProportion {
		return OpRead
	}
	f -= w.ReadProportion
	if f < w.UpdateProportion {
		return OpUpdate
	}
	f -= w.UpdateProportion
	if f < w.InsertProportion {
		return OpInsert
	}
	f -= w.InsertProportion
	if f < w.ScanProportion {
		return OpScan
	}
	return OpReadModifyWrite
}

// KeyName formats item index i as a YCSB key ("user" + zero-padded
// number), so keys sort in insertion order for scans.
func KeyName(i int64) string {
	return fmt.Sprintf("user%012d", i)
}
