// Package ycsb reimplements the Yahoo! Cloud Serving Benchmark core
// workloads (Cooper et al., SoCC '10) — the harness the paper uses for
// every throughput number in Figure 1. It provides the standard key-choice
// generators (zipfian with YCSB's scrambling, latest, uniform), the core
// workload definitions A–F with their load phases, and a multi-worker
// runner with per-operation latency histograms.
package ycsb

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
)

// Generator produces the next item index for a request distribution.
type Generator interface {
	// Next returns an item in [0, n) where n is the generator's item count
	// at the time of the call.
	Next(r *rand.Rand) int64
}

// UniformGenerator picks uniformly from [0, N).
type UniformGenerator struct {
	mu sync.Mutex
	n  int64
}

// NewUniform creates a uniform generator over [0, n).
func NewUniform(n int64) *UniformGenerator { return &UniformGenerator{n: n} }

// Next implements Generator.
func (g *UniformGenerator) Next(r *rand.Rand) int64 {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	if n <= 0 {
		return 0
	}
	return r.Int63n(n)
}

// Grow extends the item space (after inserts).
func (g *UniformGenerator) Grow() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// ZipfianConstant is YCSB's default skew (θ).
const ZipfianConstant = 0.99

// ZipfianGenerator implements the incremental zipfian algorithm from Gray
// et al. "Quickly Generating Billion-Record Synthetic Databases", as used
// by YCSB. Item 0 is the most popular.
type ZipfianGenerator struct {
	mu                         sync.Mutex
	items                      int64
	theta, zetan, zeta2, alpha float64
	eta                        float64
	countForZeta               int64
	allowItemCountDecrease     bool
}

// NewZipfian creates a zipfian generator over [0, items) with the default
// YCSB constant.
func NewZipfian(items int64) *ZipfianGenerator {
	return NewZipfianTheta(items, ZipfianConstant)
}

// NewZipfianTheta creates a zipfian generator with explicit skew θ.
func NewZipfianTheta(items int64, theta float64) *ZipfianGenerator {
	g := &ZipfianGenerator{items: items, theta: theta}
	g.zeta2 = zetaStatic(2, theta)
	g.zetan = zetaStatic(items, theta)
	g.countForZeta = items
	g.alpha = 1.0 / (1.0 - theta)
	g.eta = g.etaLocked()
	return g
}

func (g *ZipfianGenerator) etaLocked() float64 {
	return (1 - math.Pow(2.0/float64(g.items), 1-g.theta)) / (1 - g.zeta2/g.zetan)
}

func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(0); i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), theta)
	}
	return sum
}

// Next implements Generator.
func (g *ZipfianGenerator) Next(r *rand.Rand) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.items != g.countForZeta {
		// Incremental recomputation after Grow: extend zeta.
		if g.items > g.countForZeta {
			for i := g.countForZeta; i < g.items; i++ {
				g.zetan += 1.0 / math.Pow(float64(i+1), g.theta)
			}
			g.countForZeta = g.items
			g.eta = g.etaLocked()
		}
	}
	u := r.Float64()
	uz := u * g.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, g.theta) {
		return 1
	}
	return int64(float64(g.items) * math.Pow(g.eta*u-g.eta+1, g.alpha))
}

// Grow extends the item space by one (after an insert).
func (g *ZipfianGenerator) Grow() {
	g.mu.Lock()
	g.items++
	g.mu.Unlock()
}

// ScrambledZipfianGenerator spreads the zipfian popularity over the whole
// keyspace by hashing, exactly as YCSB does, so the hottest keys are not
// clustered at the low indexes.
type ScrambledZipfianGenerator struct {
	z  *ZipfianGenerator
	mu sync.Mutex
	n  int64
}

// NewScrambledZipfian creates the standard YCSB request chooser.
func NewScrambledZipfian(items int64) *ScrambledZipfianGenerator {
	return &ScrambledZipfianGenerator{z: NewZipfian(items), n: items}
}

// Next implements Generator.
func (g *ScrambledZipfianGenerator) Next(r *rand.Rand) int64 {
	v := g.z.Next(r)
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	return int64(fnvHash64(uint64(v)) % uint64(n))
}

// Grow extends the item space by one.
func (g *ScrambledZipfianGenerator) Grow() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	g.z.Grow()
}

func fnvHash64(v uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// LatestGenerator skews toward recently inserted items (workload D: "read
// latest"). It draws a zipfian offset back from the newest item.
type LatestGenerator struct {
	mu   sync.Mutex
	last int64
	z    *ZipfianGenerator
}

// NewLatest creates a latest-skewed generator where last is the highest
// existing item index.
func NewLatest(items int64) *LatestGenerator {
	return &LatestGenerator{last: items - 1, z: NewZipfian(items)}
}

// Next implements Generator.
func (g *LatestGenerator) Next(r *rand.Rand) int64 {
	off := g.z.Next(r)
	g.mu.Lock()
	last := g.last
	g.mu.Unlock()
	v := last - off
	if v < 0 {
		v = 0
	}
	return v
}

// Grow registers a newly inserted item as the latest.
func (g *LatestGenerator) Grow() {
	g.mu.Lock()
	g.last++
	g.mu.Unlock()
	g.z.Grow()
}

// Growable is the subset of generators that track inserts.
type Growable interface {
	Generator
	Grow()
}
