// Networked replication, primary side. The Hub is a store.Journal sink fed
// from the engine's group-commit queue (and from the compliance layer's
// control records): every journal record is RESP-encoded once, appended to a
// bounded backlog, and fanned out to the connected replica links. Replicas
// attach with the REPLCONF/PSYNC handshake — either through the main RESP
// server (which delegates to Hub.Serve) or through a dedicated replication
// listener (ListenAndServe).
//
// Offsets are byte offsets into the encoded record stream, exactly Redis's
// master_repl_offset model: a replica that reconnects presents its offset,
// and if the backlog still covers it the primary replays just the missing
// tail (+CONTINUE); otherwise it falls back to a full resync (+FULLRESYNC)
// built from a globally consistent snapshot.
package replica

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"gdprstore/internal/resp"
)

// DefaultBacklogSize bounds the partial-resync backlog (1 MiB). A replica
// whose disconnection outlasts this window of write traffic full-resyncs.
const DefaultBacklogSize = 1 << 20

// DefaultLinkQueue is the per-link outgoing frame queue. A replica that
// falls further behind than this many records is disconnected (it will
// reconnect and partial-resync from the backlog) rather than allowed to
// block the primary's data path.
const DefaultLinkQueue = 4096

// EncodeRecord renders one journal record in the wire/AOF format: a RESP
// array of bulk strings, name first. Primary and replica use the same
// encoder, which is what makes byte offsets agree on both ends.
func EncodeRecord(name string, args ...[]byte) []byte {
	var buf bytes.Buffer
	w := resp.NewWriter(&buf)
	vs := make([]resp.Value, 0, len(args)+1)
	vs = append(vs, resp.BulkStringValue(name))
	for _, a := range args {
		vs = append(vs, resp.BulkValue(a))
	}
	_ = w.WriteValue(resp.ArrayValue(vs...))
	_ = w.Flush()
	return buf.Bytes()
}

// SnapshotProvider produces a full-state record sequence for a full resync.
// Implementations must call cut() at the instant the snapshot's consistent
// point is reached (typically while the store is quiesced): the hub
// registers the new link there, so the live stream carries exactly the
// records after the cut. core.Store.StreamSnapshot is the canonical
// implementation.
type SnapshotProvider func(emit func(name string, args ...[]byte) error, cut func()) error

// HubOptions configures a Hub.
type HubOptions struct {
	// BacklogSize bounds the partial-resync buffer; 0 means
	// DefaultBacklogSize.
	BacklogSize int
	// LinkQueue bounds each link's outgoing frame queue; 0 means
	// DefaultLinkQueue.
	LinkQueue int
}

// LinkStat is one replica link's observable state (INFO replication).
type LinkStat struct {
	// Addr is the remote address of the link.
	Addr string
	// StartOffset is the stream offset the link was registered at.
	StartOffset int64
	// AckOffset is the last offset the replica acknowledged.
	AckOffset int64
}

// Hub is the primary-side replication fan-out. It implements store.Journal.
type Hub struct {
	id        string
	queueSize int

	mu          sync.Mutex
	offset      int64
	backlog     []byte
	backlogBase int64
	backlogCap  int
	links       map[*link]struct{}
	closed      bool
}

// NewHub creates a replication hub with a fresh replication ID.
func NewHub(opts HubOptions) *Hub {
	size := opts.BacklogSize
	if size <= 0 {
		size = DefaultBacklogSize
	}
	q := opts.LinkQueue
	if q <= 0 {
		q = DefaultLinkQueue
	}
	var idb [20]byte
	if _, err := rand.Read(idb[:]); err != nil {
		// A zero ID only weakens partial-resync matching, never safety.
		copy(idb[:], "gdprstore-fallback-id")
	}
	return &Hub{
		id:         hex.EncodeToString(idb[:]),
		queueSize:  q,
		backlogCap: size,
		links:      make(map[*link]struct{}),
	}
}

// ID returns the replication ID replicas match against for partial resync.
func (h *Hub) ID() string { return h.id }

// Offset returns the master replication offset: total encoded stream bytes.
func (h *Hub) Offset() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.offset
}

// Links returns a snapshot of the connected replica links.
func (h *Hub) Links() []LinkStat {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]LinkStat, 0, len(h.links))
	for l := range h.links {
		out = append(out, LinkStat{
			Addr:        l.addr,
			StartOffset: l.startOffset,
			AckOffset:   l.ack.Load(),
		})
	}
	return out
}

// AppendOp implements store.Journal: encode once, append to the backlog,
// fan out to every live link. A link whose queue is full is killed (it
// reconnects and partial-resyncs) so a slow replica can never block the
// primary's data path — the opposite trade from the in-process Primary,
// which favours blocking over any window of divergence.
func (h *Hub) AppendOp(name string, args ...[]byte) error {
	frame := EncodeRecord(name, args...)
	var dead []*link
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.offset += int64(len(frame))
	h.appendBacklogLocked(frame)
	for l := range h.links {
		select {
		case l.ch <- frame:
		default:
			// Overflow: remove now (under the lock) so no later frame can
			// be queued out of order, then shut the link down.
			delete(h.links, l)
			dead = append(dead, l)
		}
	}
	h.mu.Unlock()
	for _, l := range dead {
		l.shutdown()
	}
	return nil
}

// appendBacklogLocked appends frame to the backlog, trimming the front to
// stay within backlogCap. The base may land mid-record: replicas only ever
// request record-aligned offsets >= base, so alignment is preserved for
// every servable request.
func (h *Hub) appendBacklogLocked(frame []byte) {
	h.backlog = append(h.backlog, frame...)
	if over := len(h.backlog) - h.backlogCap; over > 0 {
		h.backlog = h.backlog[over:]
		h.backlogBase += int64(over)
	}
}

// tryPartialLocked registers l and returns the backlog tail from offset if
// a partial resync is possible.
func (h *Hub) tryPartialLocked(l *link, replid string, offset int64) ([]byte, bool) {
	if replid != h.id || offset < h.backlogBase || offset > h.offset {
		return nil, false
	}
	tail := make([]byte, h.offset-offset)
	copy(tail, h.backlog[offset-h.backlogBase:])
	h.links[l] = struct{}{}
	l.startOffset = offset
	l.ack.Store(offset)
	return tail, true
}

// register adds l to the fan-out at the current offset and returns that
// offset. Called from the snapshot cut point, while the store is quiesced.
func (h *Hub) register(l *link) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.links[l] = struct{}{}
	l.startOffset = h.offset
	l.ack.Store(h.offset)
	return h.offset
}

func (h *Hub) unregister(l *link) {
	h.mu.Lock()
	delete(h.links, l)
	h.mu.Unlock()
}

// DisconnectReplicas drops every connected link (they reconnect and resync
// from the backlog). Operationally useful for forcing a resync; tests use
// it to exercise the reconnect path deterministically.
func (h *Hub) DisconnectReplicas() {
	h.mu.Lock()
	links := make([]*link, 0, len(h.links))
	for l := range h.links {
		links = append(links, l)
		delete(h.links, l)
	}
	h.mu.Unlock()
	for _, l := range links {
		l.shutdown()
	}
}

// Close shuts down every link. The hub stops accepting records (AppendOp
// becomes a no-op) so a store draining its journal during shutdown cannot
// block.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	links := make([]*link, 0, len(h.links))
	for l := range h.links {
		links = append(links, l)
		delete(h.links, l)
	}
	h.mu.Unlock()
	for _, l := range links {
		l.shutdown()
	}
}

// link is one connected replica's outgoing stream.
type link struct {
	conn        net.Conn
	addr        string
	ch          chan []byte
	closed      chan struct{}
	closeOnce   sync.Once
	startOffset int64
	ack         atomic.Int64
}

func newLink(conn net.Conn, queue int) *link {
	return &link{
		conn:   conn,
		addr:   conn.RemoteAddr().String(),
		ch:     make(chan []byte, queue),
		closed: make(chan struct{}),
	}
}

// shutdown closes the connection and wakes the writer loop. Safe to call
// multiple times and from any goroutine.
func (l *link) shutdown() {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.conn.Close()
	})
}

// Serve handles one replication link after the PSYNC command has been
// parsed: it performs the full or partial resync preamble, registers the
// link, then streams records until the link dies or the hub closes. It
// blocks for the life of the link and owns conn's I/O. replid/offset are
// PSYNC's arguments ("?" / -1 request a full resync).
func (h *Hub) Serve(conn net.Conn, replid string, offset int64, snap SnapshotProvider) error {
	l := newLink(conn, h.queueSize)
	defer h.unregister(l)
	defer l.shutdown()

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return errors.New("replica: hub closed")
	}
	tail, partial := h.tryPartialLocked(l, replid, offset)
	h.mu.Unlock()

	w := resp.NewWriter(conn)
	if partial {
		if err := w.WriteValue(resp.SimpleStringValue("CONTINUE")); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if len(tail) > 0 {
			if _, err := conn.Write(tail); err != nil {
				return err
			}
		}
	} else {
		// Full resync: build the snapshot payload; the provider calls cut()
		// at the consistent point, where we register the link and learn the
		// stream offset the snapshot corresponds to.
		var payload bytes.Buffer
		var startOff int64
		emit := func(name string, args ...[]byte) error {
			payload.Write(EncodeRecord(name, args...))
			return nil
		}
		if err := snap(emit, func() { startOff = h.register(l) }); err != nil {
			return fmt.Errorf("replica: full sync snapshot: %w", err)
		}
		if err := w.WriteValue(resp.SimpleStringValue(
			fmt.Sprintf("FULLRESYNC %s %d", h.id, startOff))); err != nil {
			return err
		}
		if err := w.WriteValue(resp.BulkValue(payload.Bytes())); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}

	// ACK reader: the replica sends REPLCONF ACK <offset> on the same
	// connection; a read error means the link is gone.
	go func() {
		r := resp.NewReader(conn)
		for {
			args, err := r.ReadCommand()
			if err != nil {
				l.shutdown()
				return
			}
			if len(args) == 3 && strings.EqualFold(string(args[0]), "REPLCONF") &&
				strings.EqualFold(string(args[1]), "ACK") {
				if n, err := strconv.ParseInt(string(args[2]), 10, 64); err == nil {
					l.ack.Store(n)
				}
			}
		}
	}()

	for {
		select {
		case frame := <-l.ch:
			if _, err := conn.Write(frame); err != nil {
				return err
			}
		case <-l.closed:
			return nil
		}
	}
}

// Listener is a dedicated replication endpoint serving the
// REPLCONF/PSYNC handshake outside the main RESP server (for deployments
// that keep replication traffic on its own port, and for tests).
type Listener struct {
	ln   net.Listener
	hub  *Hub
	snap SnapshotProvider
	auth func(actor string) bool
	wg   sync.WaitGroup

	// mu guards conns/closed: connections still in the handshake phase are
	// not yet hub links, so Close must be able to reach and close them.
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// ListenAndServe starts a replication-only listener on addr. auth, when
// non-nil, gates PSYNC on the actor presented via AUTH (actor auth of the
// handshake); nil accepts any.
func (h *Hub) ListenAndServe(addr string, snap SnapshotProvider, auth func(actor string) bool) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("replica: listen: %w", err)
	}
	l := &Listener{ln: ln, hub: h, snap: snap, auth: auth, conns: make(map[net.Conn]struct{})}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listener's address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Close stops accepting, severs every connection — including ones still
// mid-handshake, which are not yet hub links — and waits for the serving
// goroutines to finish.
func (l *Listener) Close() error {
	err := l.ln.Close()
	l.mu.Lock()
	l.closed = true
	for c := range l.conns {
		c.Close()
	}
	l.mu.Unlock()
	l.hub.DisconnectReplicas()
	l.wg.Wait()
	return err
}

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		c, err := l.ln.Accept()
		if err != nil {
			return
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			c.Close()
			return
		}
		l.conns[c] = struct{}{}
		l.mu.Unlock()
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			defer func() {
				l.mu.Lock()
				delete(l.conns, c)
				l.mu.Unlock()
			}()
			l.serveConn(c)
		}()
	}
}

// serveConn speaks the minimal handshake command set: PING, AUTH,
// REPLCONF, PSYNC. Anything else is an error reply.
func (l *Listener) serveConn(c net.Conn) {
	defer c.Close()
	r := resp.NewReader(c)
	w := resp.NewWriter(c)
	actor := ""
	reply := func(v resp.Value) bool {
		if err := w.WriteValue(v); err != nil {
			return false
		}
		return w.Flush() == nil
	}
	for {
		args, err := r.ReadCommand()
		if err != nil {
			return
		}
		switch strings.ToUpper(string(args[0])) {
		case "PING":
			if !reply(resp.SimpleStringValue("PONG")) {
				return
			}
		case "AUTH":
			if len(args) != 2 {
				if !reply(resp.ErrorValue("ERR wrong number of arguments for 'auth'")) {
					return
				}
				continue
			}
			actor = string(args[1])
			if !reply(resp.SimpleStringValue("OK")) {
				return
			}
		case "REPLCONF":
			if !reply(resp.SimpleStringValue("OK")) {
				return
			}
		case "PSYNC":
			if l.auth != nil && !l.auth(actor) {
				reply(resp.ErrorValue("DENIED replication requires an authorised actor"))
				return
			}
			replid, offset, perr := ParsePSYNCArgs(args[1:])
			if perr != nil {
				reply(resp.ErrorValue("ERR " + perr.Error()))
				return
			}
			_ = l.hub.Serve(c, replid, offset, l.snap)
			return
		default:
			if !reply(resp.ErrorValue("ERR unknown command '" + string(args[0]) + "'")) {
				return
			}
		}
	}
}

// ParsePSYNCArgs parses PSYNC's <replid> <offset> argument pair. "?" and
// -1 request a full resync.
func ParsePSYNCArgs(args [][]byte) (replid string, offset int64, err error) {
	if len(args) != 2 {
		return "", 0, errors.New("PSYNC needs <replid> <offset>")
	}
	replid = string(args[0])
	offset, perr := strconv.ParseInt(string(args[1]), 10, 64)
	if perr != nil {
		return "", 0, errors.New("PSYNC offset must be an integer")
	}
	return replid, offset, nil
}
