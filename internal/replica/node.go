// Networked replication, replica side. A Node dials the primary, performs
// the REPLCONF handshake (capabilities + actor auth), receives either a
// full sync (streamed snapshot in the AOF record format) or a partial
// resync (backlog tail), then tails the live record stream, applying every
// record to its Applier and acknowledging applied offsets. A dropped link
// reconnects with bounded backoff and resumes via PSYNC <replid> <offset>.
package replica

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"gdprstore/internal/resp"
)

// Applier consumes replicated journal records. core.Store implements it
// (ApplyReplicated); tests substitute lighter appliers. Records arrive in
// journal order from a single goroutine.
type Applier interface {
	ApplyReplicated(name string, args [][]byte) error
}

// LinkStatus is the replica's view of its link to the primary.
type LinkStatus int

// Link states, in the order a healthy attach traverses them.
const (
	// LinkConnecting: dialing or handshaking.
	LinkConnecting LinkStatus = iota
	// LinkSyncing: receiving a full-sync snapshot.
	LinkSyncing
	// LinkUp: tailing the live stream.
	LinkUp
	// LinkDown: disconnected, waiting to reconnect (or stopped).
	LinkDown
)

// String returns the INFO-replication spelling.
func (s LinkStatus) String() string {
	switch s {
	case LinkConnecting:
		return "connecting"
	case LinkSyncing:
		return "syncing"
	case LinkUp:
		return "up"
	default:
		return "down"
	}
}

// NodeOptions configures DialPrimary.
type NodeOptions struct {
	// Actor is presented via AUTH during the handshake; empty skips AUTH.
	Actor string
	// ReconnectMin/ReconnectMax bound the reconnect backoff (defaults
	// 50ms / 2s; the delay doubles per consecutive failure).
	ReconnectMin, ReconnectMax time.Duration
	// Dial overrides the dialer (tests inject failures); nil uses TCP with
	// a 5s timeout.
	Dial func(addr string) (net.Conn, error)
}

// NodeStatus is a snapshot of the node's replication state.
type NodeStatus struct {
	// PrimaryAddr is the address the node replicates from.
	PrimaryAddr string
	// Link is the current link status.
	Link LinkStatus
	// ReplID is the primary's replication ID learned at full sync.
	ReplID string
	// Offset is the replication offset the node has applied through.
	Offset int64
	// Applied counts records applied (snapshot + stream).
	Applied uint64
	// FullSyncs counts full resyncs performed.
	FullSyncs uint64
	// Reconnects counts link re-establishments after the first.
	Reconnects uint64
	// LastErr is the most recent link or apply error.
	LastErr error
}

// Node maintains a replication link from a primary to a local Applier.
type Node struct {
	applier Applier
	addr    string
	opts    NodeOptions

	mu       sync.Mutex
	status   NodeStatus
	conn     net.Conn
	stopped  bool
	connects uint64
	stop     chan struct{}
	done     chan struct{}
}

// DialPrimary starts replicating from the primary at addr into applier.
// The returned Node manages the link in the background until Close.
func DialPrimary(applier Applier, addr string, opts NodeOptions) *Node {
	if opts.ReconnectMin <= 0 {
		opts.ReconnectMin = 50 * time.Millisecond
	}
	if opts.ReconnectMax <= 0 {
		opts.ReconnectMax = 2 * time.Second
	}
	if opts.Dial == nil {
		opts.Dial = func(a string) (net.Conn, error) {
			return net.DialTimeout("tcp", a, 5*time.Second)
		}
	}
	n := &Node{
		applier: applier,
		addr:    addr,
		opts:    opts,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	n.status.PrimaryAddr = addr
	n.status.Link = LinkConnecting
	go n.run()
	return n
}

// Status returns a snapshot of the node's replication state.
func (n *Node) Status() NodeStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.status
}

// PrimaryAddr returns the address the node replicates from.
func (n *Node) PrimaryAddr() string { return n.addr }

// Close stops replication and waits for the link goroutine to exit. The
// applied dataset remains as-is (ready for promotion).
func (n *Node) Close() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		<-n.done
		return
	}
	n.stopped = true
	close(n.stop)
	if n.conn != nil {
		n.conn.Close()
	}
	n.mu.Unlock()
	<-n.done
}

func (n *Node) setLink(s LinkStatus) {
	n.mu.Lock()
	n.status.Link = s
	n.mu.Unlock()
}

func (n *Node) setErr(err error) {
	if err == nil || errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		return
	}
	n.mu.Lock()
	n.status.LastErr = err
	n.mu.Unlock()
}

// run is the link loop: connect, sync, stream, reconnect with backoff.
func (n *Node) run() {
	defer close(n.done)
	backoff := n.opts.ReconnectMin
	for {
		select {
		case <-n.stop:
			n.setLink(LinkDown)
			return
		default:
		}
		err := n.connectAndStream()
		n.setErr(err)
		n.setLink(LinkDown)
		select {
		case <-n.stop:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > n.opts.ReconnectMax {
			backoff = n.opts.ReconnectMax
		}
	}
}

// connectAndStream performs one full link lifetime: handshake, resync,
// stream until error or stop.
func (n *Node) connectAndStream() error {
	n.setLink(LinkConnecting)
	conn, err := n.opts.Dial(n.addr)
	if err != nil {
		return err
	}
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		conn.Close()
		return net.ErrClosed
	}
	n.conn = conn
	n.connects++
	if n.connects > 1 {
		n.status.Reconnects++
	}
	replid, offset := n.status.ReplID, n.status.Offset
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		n.conn = nil
		n.mu.Unlock()
		conn.Close()
	}()

	cr := &countingReader{r: conn}
	r := resp.NewReader(cr)
	w := resp.NewWriter(conn)
	do := func(args ...string) (resp.Value, error) {
		if err := w.WriteCommand(args...); err != nil {
			return resp.Value{}, err
		}
		if err := w.Flush(); err != nil {
			return resp.Value{}, err
		}
		v, err := r.ReadValue()
		if err != nil {
			return resp.Value{}, err
		}
		if v.IsError() {
			return v, fmt.Errorf("replica: primary: %s", v.Text())
		}
		return v, nil
	}

	// Handshake: liveness, actor auth, capabilities.
	if _, err := do("PING"); err != nil {
		return err
	}
	if n.opts.Actor != "" {
		if _, err := do("AUTH", n.opts.Actor); err != nil {
			return err
		}
	}
	if _, err := do("REPLCONF", "CAPA", "psync2"); err != nil {
		return err
	}

	// PSYNC: ask to continue from where we left off; "?" -1 on first sync.
	if replid == "" {
		replid, offset = "?", -1
	}
	if err := w.WriteCommand("PSYNC", replid, strconv.FormatInt(offset, 10)); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	v, err := r.ReadValue()
	if err != nil {
		return err
	}
	switch {
	case v.IsError():
		return fmt.Errorf("replica: PSYNC refused: %s", v.Text())
	case v.Type == resp.SimpleString && strings.HasPrefix(v.Text(), "FULLRESYNC"):
		fields := strings.Fields(v.Text())
		if len(fields) != 3 {
			return fmt.Errorf("replica: malformed FULLRESYNC %q", v.Text())
		}
		startOff, perr := strconv.ParseInt(fields[2], 10, 64)
		if perr != nil {
			return fmt.Errorf("replica: malformed FULLRESYNC offset %q", fields[2])
		}
		n.setLink(LinkSyncing)
		payload, err := r.ReadValue()
		if err != nil {
			return err
		}
		if payload.Type != resp.BulkString || payload.Null {
			return errors.New("replica: full sync payload is not a bulk string")
		}
		if err := n.applySnapshot(payload.Str); err != nil {
			return err
		}
		n.mu.Lock()
		n.status.ReplID = fields[1]
		n.status.Offset = startOff
		n.status.FullSyncs++
		n.mu.Unlock()
	case v.Type == resp.SimpleString && v.Text() == "CONTINUE":
		// Partial resync: state is already consistent through our offset;
		// the stream resumes right after it.
	default:
		return fmt.Errorf("replica: unexpected PSYNC reply %q", v.Text())
	}

	n.setLink(LinkUp)
	// Offset accounting: the primary's offsets are byte positions in the
	// encoded stream, and from here on every byte the parser consumes IS
	// stream (handshake and snapshot are behind us), so the replica's
	// offset is its PSYNC base plus bytes consumed — no re-encoding needed.
	n.mu.Lock()
	base := n.status.Offset
	n.mu.Unlock()
	consumed0 := cr.n - int64(r.Buffered())
	return n.streamLoop(r, w, cr, base-consumed0)
}

// countingReader counts bytes handed to the parser's buffer; together with
// resp.Reader.Buffered it yields the exact byte position of each record
// boundary in the stream.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	m, err := c.r.Read(p)
	c.n += int64(m)
	return m, err
}

// applySnapshot replays a full-sync payload: concatenated records in the
// AOF/wire format.
func (n *Node) applySnapshot(payload []byte) error {
	r := resp.NewReader(bytes.NewReader(payload))
	for {
		args, err := r.ReadCommand()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("replica: snapshot decode: %w", err)
		}
		if err := n.applier.ApplyReplicated(string(args[0]), args[1:]); err != nil {
			return fmt.Errorf("replica: snapshot apply %s: %w", string(args[0]), err)
		}
		n.mu.Lock()
		n.status.Applied++
		n.mu.Unlock()
	}
}

// streamLoop tails the live record stream, applying and acknowledging.
// base is the stream offset corresponding to zero consumed bytes, so a
// record boundary's offset is base + bytes the parser has consumed. ACKs
// are sent whenever the read buffer drains, so a pipelined burst is
// acknowledged once, at its end.
func (n *Node) streamLoop(r *resp.Reader, w *resp.Writer, cr *countingReader, base int64) error {
	for {
		args, err := r.ReadCommand()
		if err != nil {
			return err
		}
		name := string(args[0])
		if aerr := n.applier.ApplyReplicated(name, args[1:]); aerr != nil {
			// Apply errors are recorded but do not sever the link: a
			// record the replica cannot apply would fail again after
			// reconnect (the stream would just resend it), so surfacing
			// via LastErr and continuing preserves availability.
			n.setErr(aerr)
		}
		off := base + cr.n - int64(r.Buffered())
		n.mu.Lock()
		n.status.Offset = off
		n.status.Applied++
		n.mu.Unlock()
		if r.Buffered() == 0 {
			if err := w.WriteCommand("REPLCONF", "ACK", strconv.FormatInt(off, 10)); err != nil {
				return err
			}
			if err := w.Flush(); err != nil {
				return err
			}
		}
	}
}
