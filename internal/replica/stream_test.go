package replica

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gdprstore/internal/clock"
	"gdprstore/internal/store"
	"gdprstore/internal/testutil"
)

// fakeApplier is a minimal replica state machine: enough record semantics
// to assert convergence without importing core (which imports this
// package).
type fakeApplier struct {
	mu      sync.Mutex
	m       map[string]string
	records []string
}

func newFakeApplier() *fakeApplier { return &fakeApplier{m: make(map[string]string)} }

func (f *fakeApplier) ApplyReplicated(name string, args [][]byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch name {
	case "SET":
		f.m[string(args[0])] = string(args[1])
	case "SETEX":
		f.m[string(args[0])] = string(args[2])
	case "DEL":
		for _, a := range args {
			delete(f.m, string(a))
		}
	case "FLUSHALL":
		f.m = make(map[string]string)
	}
	f.records = append(f.records, name)
	return nil
}

func (f *fakeApplier) get(k string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.m[k]
	return v, ok
}

func (f *fakeApplier) size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}

// testPrimary wires a raw engine to a hub with a snapshot provider, the
// way core.Store does for the full compliance state.
type testPrimary struct {
	db  *store.DB
	hub *Hub
}

func newTestPrimary(t *testing.T, opts HubOptions) *testPrimary {
	t.Helper()
	db := store.New(store.Options{Clock: clock.NewVirtual(time.Unix(0, 0)), Seed: 1})
	hub := NewHub(opts)
	db.SetJournal(hub)
	t.Cleanup(hub.Close)
	return &testPrimary{db: db, hub: hub}
}

// snap is the test SnapshotProvider: FLUSHALL + engine snapshot, with the
// cut taken first (tests do not write concurrently with attachment).
func (p *testPrimary) snap(emit func(name string, args ...[]byte) error, cut func()) error {
	cut()
	if err := emit("FLUSHALL"); err != nil {
		return err
	}
	return p.db.Snapshot(emit)
}

func (p *testPrimary) listen(t *testing.T, auth func(string) bool) *Listener {
	t.Helper()
	l, err := p.hub.ListenAndServe("127.0.0.1:0", p.snap, auth)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func dialNode(t *testing.T, f *fakeApplier, addr string, opts NodeOptions) *Node {
	t.Helper()
	if opts.ReconnectMin == 0 {
		opts.ReconnectMin = 5 * time.Millisecond
	}
	if opts.ReconnectMax == 0 {
		opts.ReconnectMax = 50 * time.Millisecond
	}
	n := DialPrimary(f, addr, opts)
	t.Cleanup(n.Close)
	return n
}

func TestFullSyncThenLiveStream(t *testing.T) {
	p := newTestPrimary(t, HubOptions{})
	p.db.Set("seed", []byte("v0"))
	l := p.listen(t, nil)
	f := newFakeApplier()
	n := dialNode(t, f, l.Addr(), NodeOptions{})

	testutil.Eventually(t, 5*time.Second, 0, func() bool {
		_, ok := f.get("seed")
		return ok
	}, "full sync did not deliver seeded key")

	p.db.Set("live", []byte("v1"))
	testutil.Eventually(t, 5*time.Second, 0, func() bool {
		v, ok := f.get("live")
		return ok && v == "v1"
	}, "live stream did not deliver write")

	p.db.Del("seed")
	testutil.Eventually(t, 5*time.Second, 0, func() bool {
		_, ok := f.get("seed")
		return !ok
	}, "live stream did not deliver delete")

	st := n.Status()
	if st.FullSyncs != 1 {
		t.Fatalf("full syncs = %d, want 1", st.FullSyncs)
	}
	if st.Link != LinkUp {
		t.Fatalf("link = %s, want up", st.Link)
	}
}

func TestAcksConvergeToMasterOffset(t *testing.T) {
	p := newTestPrimary(t, HubOptions{})
	l := p.listen(t, nil)
	f := newFakeApplier()
	dialNode(t, f, l.Addr(), NodeOptions{})

	testutil.Eventually(t, 5*time.Second, 0, func() bool {
		return len(p.hub.Links()) == 1
	}, "replica link not registered")
	for i := 0; i < 50; i++ {
		p.db.Set(fmt.Sprintf("k%d", i), []byte("v"))
	}
	testutil.Eventually(t, 5*time.Second, 0, func() bool {
		links := p.hub.Links()
		return len(links) == 1 && links[0].AckOffset == p.hub.Offset()
	}, "ack offset never caught up to master offset")
}

func TestPartialResyncAfterLinkDrop(t *testing.T) {
	p := newTestPrimary(t, HubOptions{})
	l := p.listen(t, nil)
	f := newFakeApplier()
	n := dialNode(t, f, l.Addr(), NodeOptions{})
	testutil.Eventually(t, 5*time.Second, 0, func() bool {
		return len(p.hub.Links()) == 1
	}, "initial attach")
	p.db.Set("before", []byte("1"))
	testutil.Eventually(t, 5*time.Second, 0, func() bool {
		_, ok := f.get("before")
		return ok
	}, "pre-drop write")

	p.hub.DisconnectReplicas()
	p.db.Set("during", []byte("2"))
	testutil.Eventually(t, 5*time.Second, 0, func() bool {
		v, ok := f.get("during")
		return ok && v == "2"
	}, "write during disconnect never arrived")

	st := n.Status()
	if st.FullSyncs != 1 {
		t.Fatalf("full syncs = %d, want 1 (reconnect should partial-resync)", st.FullSyncs)
	}
	if st.Reconnects == 0 {
		t.Fatal("reconnects not counted")
	}
}

func TestBacklogOverflowFallsBackToFullResync(t *testing.T) {
	p := newTestPrimary(t, HubOptions{BacklogSize: 128})
	l := p.listen(t, nil)
	f := newFakeApplier()
	n := dialNode(t, f, l.Addr(), NodeOptions{})
	testutil.Eventually(t, 5*time.Second, 0, func() bool {
		return len(p.hub.Links()) == 1
	}, "initial attach")

	p.hub.DisconnectReplicas()
	// Push far more than 128 bytes of stream while the link is down.
	for i := 0; i < 100; i++ {
		p.db.Set(fmt.Sprintf("big%03d", i), []byte(strings.Repeat("x", 32)))
	}
	testutil.Eventually(t, 5*time.Second, 0, func() bool {
		return f.size() >= 100
	}, "replica never reconverged after overflow")
	testutil.Eventually(t, 5*time.Second, 0, func() bool {
		return n.Status().FullSyncs == 2
	}, "overflowed reconnect should have full-resynced")
}

func TestSlowReplicaIsDisconnectedNotBlocking(t *testing.T) {
	p := newTestPrimary(t, HubOptions{LinkQueue: 4})
	l := p.listen(t, nil)
	f := newFakeApplier()
	dialNode(t, f, l.Addr(), NodeOptions{})
	testutil.Eventually(t, 5*time.Second, 0, func() bool {
		return len(p.hub.Links()) == 1
	}, "initial attach")

	// A burst beyond the tiny link queue must never block the primary's
	// journal path; the link is killed and resyncs.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 500; i++ {
			p.db.Set(fmt.Sprintf("burst%03d", i), []byte("v"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("primary write path blocked by slow replica")
	}
	testutil.Eventually(t, 10*time.Second, 0, func() bool {
		v, ok := f.get("burst499")
		return ok && v == "v"
	}, "replica never converged after overflow kill")
}

func TestListenerAuthGatesPSYNC(t *testing.T) {
	p := newTestPrimary(t, HubOptions{})
	l := p.listen(t, func(actor string) bool { return actor == "dpo" })
	p.db.Set("k", []byte("v"))

	// Wrong actor: PSYNC refused; the node keeps retrying but never syncs.
	f1 := newFakeApplier()
	n1 := dialNode(t, f1, l.Addr(), NodeOptions{Actor: "intruder"})
	testutil.Eventually(t, 5*time.Second, 0, func() bool {
		err := n1.Status().LastErr
		return err != nil && strings.Contains(err.Error(), "DENIED")
	}, "unauthorised PSYNC not refused")
	if f1.size() != 0 {
		t.Fatal("unauthorised replica received data")
	}

	// Authorised actor converges.
	f2 := newFakeApplier()
	dialNode(t, f2, l.Addr(), NodeOptions{Actor: "dpo"})
	testutil.Eventually(t, 5*time.Second, 0, func() bool {
		_, ok := f2.get("k")
		return ok
	}, "authorised replica did not sync")
}

func TestListenerCloseWithStalledHandshake(t *testing.T) {
	p := newTestPrimary(t, HubOptions{})
	l, err := p.hub.ListenAndServe("127.0.0.1:0", p.snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A connection that completes no handshake is not a hub link; Close
	// must still reach it instead of waiting on its serve goroutine.
	conn, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	done := make(chan struct{})
	go func() {
		l.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Listener.Close deadlocked on a stalled handshake connection")
	}
}

func TestEncodeRecordRoundTripsOffsets(t *testing.T) {
	// Primary and replica must agree on record length byte-for-byte —
	// offsets depend on it.
	rec := EncodeRecord("SETEX", []byte("k"), []byte("2020-01-01T00:00:00Z"), []byte("v"))
	want := "*4\r\n$5\r\nSETEX\r\n$1\r\nk\r\n$20\r\n2020-01-01T00:00:00Z\r\n$1\r\nv\r\n"
	if string(rec) != want {
		t.Fatalf("encoding changed:\n got %q\nwant %q", rec, want)
	}
}

func TestParsePSYNCArgs(t *testing.T) {
	id, off, err := ParsePSYNCArgs([][]byte{[]byte("?"), []byte("-1")})
	if err != nil || id != "?" || off != -1 {
		t.Fatalf("got %q %d %v", id, off, err)
	}
	if _, _, err := ParsePSYNCArgs([][]byte{[]byte("x")}); err == nil {
		t.Fatal("short args accepted")
	}
	if _, _, err := ParsePSYNCArgs([][]byte{[]byte("x"), []byte("nope")}); err == nil {
		t.Fatal("bad offset accepted")
	}
}
