package replica

import (
	"fmt"
	"testing"
	"time"

	"gdprstore/internal/clock"
	"gdprstore/internal/store"
)

func newDB() *store.DB {
	return store.New(store.Options{Clock: clock.NewVirtual(time.Unix(0, 0)), Seed: 1})
}

func TestSyncReplicationMirrorsWrites(t *testing.T) {
	primary := newDB()
	p := NewPrimary(Sync, 0)
	defer p.Close()
	r, err := p.Attach(primary, newDB())
	if err != nil {
		t.Fatal(err)
	}
	primary.SetJournal(p)

	primary.Set("k1", []byte("v1"))
	primary.SetEX("k2", []byte("v2"), time.Hour)
	primary.Del("k1")

	if v, ok := r.DB.Get("k2"); !ok || string(v) != "v2" {
		t.Fatalf("replica k2 = %q, %v", v, ok)
	}
	if r.DB.Exists("k1") {
		t.Fatal("deleted key present on sync replica")
	}
	if _, st := r.DB.TTL("k2"); st != store.TTLSet {
		t.Fatal("TTL not replicated")
	}
	if r.Applied() != 3 {
		t.Fatalf("applied = %d", r.Applied())
	}
}

func TestAttachSeedsExistingData(t *testing.T) {
	primary := newDB()
	primary.Set("pre", []byte("existing"))
	primary.SetEX("pre-ttl", []byte("x"), time.Hour)
	p := NewPrimary(Sync, 0)
	defer p.Close()
	r, err := p.Attach(primary, newDB())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := r.DB.Get("pre"); !ok || string(v) != "existing" {
		t.Fatalf("seed missing: %q, %v", v, ok)
	}
	if _, st := r.DB.TTL("pre-ttl"); st != store.TTLSet {
		t.Fatal("seeded TTL missing")
	}
}

func TestAsyncReplicationDrains(t *testing.T) {
	primary := newDB()
	p := NewPrimary(Async, 64)
	defer p.Close()
	r, err := p.Attach(primary, newDB())
	if err != nil {
		t.Fatal(err)
	}
	primary.SetJournal(p)
	for i := 0; i < 500; i++ {
		primary.Set(fmt.Sprintf("k%d", i), []byte("v"))
	}
	p.Flush()
	if got := r.DB.RawLen(); got != 500 {
		t.Fatalf("replica has %d keys after flush, want 500", got)
	}
	if r.Lag() != 0 {
		t.Fatalf("lag after flush = %d", r.Lag())
	}
}

func TestErasurePropagatesToAllReplicas(t *testing.T) {
	// The Article 17 property: after deletion + Flush, no replica holds
	// the erased data, in either mode.
	for _, mode := range []Mode{Sync, Async} {
		t.Run(mode.String(), func(t *testing.T) {
			primary := newDB()
			p := NewPrimary(mode, 0)
			defer p.Close()
			var reps []*Replica
			for i := 0; i < 3; i++ {
				r, err := p.Attach(primary, newDB())
				if err != nil {
					t.Fatal(err)
				}
				reps = append(reps, r)
			}
			primary.SetJournal(p)
			primary.Set("pd:alice", []byte("personal"))
			primary.Set("pd:bob", []byte("other"))
			primary.Del("pd:alice")
			p.Flush()
			for i, r := range reps {
				if r.DB.Exists("pd:alice") {
					t.Fatalf("replica %d (%s) still holds erased data", i, mode)
				}
				if !r.DB.Exists("pd:bob") {
					t.Fatalf("replica %d lost unrelated data", i)
				}
			}
		})
	}
}

func TestExpiryDeletionsReplicate(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	primary := store.New(store.Options{Clock: vc, Seed: 1, Strategy: store.ExpiryFastScan})
	p := NewPrimary(Sync, 0)
	defer p.Close()
	// Replica shares the virtual clock so its own lazy expiry stays inert.
	r, err := p.Attach(primary, store.New(store.Options{Clock: vc, Seed: 2}))
	if err != nil {
		t.Fatal(err)
	}
	primary.SetJournal(p)
	primary.SetEX("short", []byte("v"), time.Minute)
	vc.Advance(2 * time.Minute)
	primary.ActiveExpireCycle() // journals the DEL
	if r.DB.RawLen() != 0 {
		t.Fatal("expiry deletion did not reach the replica")
	}
}

func TestDetachStopsStreaming(t *testing.T) {
	primary := newDB()
	p := NewPrimary(Sync, 0)
	defer p.Close()
	r, _ := p.Attach(primary, newDB())
	primary.SetJournal(p)
	primary.Set("a", []byte("1"))
	p.Detach(r)
	primary.Set("b", []byte("2"))
	if r.DB.Exists("b") {
		t.Fatal("detached replica still receiving")
	}
	if !r.DB.Exists("a") {
		t.Fatal("detached replica lost prior data")
	}
	if len(p.Replicas()) != 0 {
		t.Fatal("replica list not empty")
	}
}

func TestPromoteDetachedReplica(t *testing.T) {
	primary := newDB()
	p := NewPrimary(Sync, 0)
	defer p.Close()
	r, _ := p.Attach(primary, newDB())
	primary.SetJournal(p)
	primary.Set("k", []byte("v"))
	p.Detach(r)
	// Promotion: the replica DB serves reads and writes on its own.
	r.DB.Set("new", []byte("after-promotion"))
	if v, ok := r.DB.Get("new"); !ok || string(v) != "after-promotion" {
		t.Fatalf("promoted replica write failed: %q %v", v, ok)
	}
}

func TestChainFansOutToAOFAndReplicas(t *testing.T) {
	primary := newDB()
	p := NewPrimary(Sync, 0)
	defer p.Close()
	r, _ := p.Attach(primary, newDB())
	var logged []string
	fakeAOF := store.JournalFunc(func(name string, args ...[]byte) error {
		logged = append(logged, name)
		return nil
	})
	j, err := Chain(fakeAOF, p)
	if err != nil {
		t.Fatal(err)
	}
	primary.SetJournal(j)
	primary.Set("k", []byte("v"))
	if len(logged) != 1 || logged[0] != "SET" {
		t.Fatalf("AOF leg got %v", logged)
	}
	if !r.DB.Exists("k") {
		t.Fatal("replica leg missed the op")
	}
}

func TestChainRejectsEmpty(t *testing.T) {
	if _, err := Chain(nil, nil); err != ErrNilJournal {
		t.Fatalf("err = %v", err)
	}
}

func TestAsyncArgBuffersCopied(t *testing.T) {
	// The journal caller may reuse its arg buffer; async replicas must
	// not observe the mutation.
	primary := newDB()
	p := NewPrimary(Async, 64)
	defer p.Close()
	r, _ := p.Attach(primary, newDB())
	buf := []byte("original")
	p.AppendOp("SET", []byte("k"), buf)
	copy(buf, "CLOBBER!")
	p.Flush()
	if v, _ := r.DB.Get("k"); string(v) != "original" {
		t.Fatalf("replica saw mutated buffer: %q", v)
	}
}

func TestReplicaLastErrSurfacesBadOps(t *testing.T) {
	primary := newDB()
	p := NewPrimary(Sync, 0)
	defer p.Close()
	r, _ := p.Attach(primary, newDB())
	p.AppendOp("GARBAGE-OP")
	if r.LastErr() == nil {
		t.Fatal("bad op not surfaced")
	}
}

func TestModeString(t *testing.T) {
	if Sync.String() != "sync" || Async.String() != "async" {
		t.Fatal("mode names wrong")
	}
}
