// Package replica provides the replication substrate the paper's Article
// 17 analysis demands: "the requested data be erased in a timely manner
// including all its replicas and backups". A primary fans its journal out
// to replicas either synchronously (each op applied to every replica
// before the primary's call returns — real-time compliance) or
// asynchronously (ops queue and apply in the background — eventual
// compliance, with measurable erasure lag on the replicas).
//
// Two transports share those semantics:
//
//   - In-process (this file): replicas are store.DB instances fed through
//     the same journal interface the AOF uses — Primary/Replica with
//     sync/async modes, used for the paper's compliance-spectrum
//     experiments.
//   - Networked (stream.go / node.go): a Hub on the primary RESP-encodes
//     the journal stream and fans it out over TCP to Nodes that dialed in
//     with the REPLCONF/PSYNC handshake, with full-sync snapshots, a
//     bounded backlog for partial resync, and offset acknowledgement —
//     the read-scale-out path.
package replica

import (
	"errors"
	"fmt"
	"sync"

	"gdprstore/internal/store"
)

// Mode selects replication timing.
type Mode int

// Replication modes, named for the compliance spectrum they serve.
const (
	// Sync applies each op to every replica before the primary returns:
	// deletions are visible everywhere immediately (real-time compliance).
	Sync Mode = iota
	// Async queues ops per replica and applies them in the background:
	// deletions propagate with a lag (eventual compliance).
	Async
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Sync {
		return "sync"
	}
	return "async"
}

// op is one journaled operation in flight. A non-nil flush field marks a
// drain barrier instead of a data op.
type op struct {
	name  string
	args  [][]byte
	flush chan struct{}
}

// Replica is one secondary copy of the dataset.
type Replica struct {
	// DB is the replica's dataset.
	DB *store.DB

	mu      sync.Mutex
	applied uint64
	lastErr error

	// async machinery
	ch     chan op
	done   chan struct{}
	closed bool
}

// Applied returns how many operations the replica has applied.
func (r *Replica) Applied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Lag returns how many operations are queued but not yet applied (always
// zero for sync replicas).
func (r *Replica) Lag() int {
	if r.ch == nil {
		return 0
	}
	return len(r.ch)
}

// LastErr returns the most recent apply error.
func (r *Replica) LastErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

func (r *Replica) apply(o op) {
	err := r.DB.Apply(o.name, o.args)
	r.mu.Lock()
	r.applied++
	if err != nil && r.lastErr == nil {
		r.lastErr = err
	}
	r.mu.Unlock()
}

func (r *Replica) runAsync() {
	defer close(r.done)
	for o := range r.ch {
		if o.flush != nil {
			close(o.flush)
			continue
		}
		r.apply(o)
	}
}

// Primary fans journal operations out to replicas. It implements
// store.Journal so it can be chained between the engine and the AOF with
// Chain.
type Primary struct {
	mu       sync.Mutex
	mode     Mode
	replicas []*Replica
	bufSize  int
}

// NewPrimary creates a fan-out in the given mode. bufSize bounds each
// async replica's queue (default 4096); a full queue applies backpressure
// by blocking the primary, never by dropping ops — dropping a DEL would
// violate erasure propagation.
func NewPrimary(mode Mode, bufSize int) *Primary {
	if bufSize <= 0 {
		bufSize = 4096
	}
	return &Primary{mode: mode, bufSize: bufSize}
}

// Mode returns the replication mode.
func (p *Primary) Mode() Mode { return p.mode }

// Attach creates a replica seeded with a snapshot of src and registers it
// for streaming. The snapshot and registration are atomic with respect to
// journaled ops only if the caller pauses writes; otherwise ops between
// snapshot and attach may be duplicated, which Apply tolerates (SET/DEL
// are idempotent).
func (p *Primary) Attach(src *store.DB, replicaDB *store.DB) (*Replica, error) {
	if err := src.Snapshot(func(name string, args ...[]byte) error {
		return replicaDB.Apply(name, args)
	}); err != nil {
		return nil, fmt.Errorf("replica: seed: %w", err)
	}
	r := &Replica{DB: replicaDB}
	if p.mode == Async {
		r.ch = make(chan op, p.bufSize)
		r.done = make(chan struct{})
		go r.runAsync()
	}
	p.mu.Lock()
	p.replicas = append(p.replicas, r)
	p.mu.Unlock()
	return r, nil
}

// Detach removes a replica from the fan-out and stops its applier. The
// replica's DB remains usable (e.g. for promoting it).
func (p *Primary) Detach(r *Replica) {
	p.mu.Lock()
	kept := p.replicas[:0]
	for _, x := range p.replicas {
		if x != r {
			kept = append(kept, x)
		}
	}
	p.replicas = kept
	p.mu.Unlock()
	r.stop()
}

func (r *Replica) stop() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	if r.ch != nil {
		close(r.ch)
		<-r.done
	}
}

// Replicas returns the attached replicas.
func (p *Primary) Replicas() []*Replica {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Replica(nil), p.replicas...)
}

// AppendOp implements store.Journal: fan the op out per the mode.
func (p *Primary) AppendOp(name string, args ...[]byte) error {
	// Copy args: journal callers may reuse buffers after we return, and
	// async repliers hold the op across goroutines.
	cp := make([][]byte, len(args))
	for i, a := range args {
		b := make([]byte, len(a))
		copy(b, a)
		cp[i] = b
	}
	o := op{name: name, args: cp}

	p.mu.Lock()
	replicas := append([]*Replica(nil), p.replicas...)
	p.mu.Unlock()
	for _, r := range replicas {
		if p.mode == Sync {
			r.apply(o)
			continue
		}
		r.mu.Lock()
		closed := r.closed
		r.mu.Unlock()
		if !closed {
			r.ch <- o
		}
	}
	return nil
}

// Flush blocks until every async replica has drained all operations
// enqueued before the call. It is how an eventually compliant deployment
// verifies erasure propagation before confirming an Article 17 request.
func (p *Primary) Flush() {
	p.mu.Lock()
	replicas := append([]*Replica(nil), p.replicas...)
	p.mu.Unlock()
	for _, r := range replicas {
		if r.ch == nil {
			continue
		}
		r.mu.Lock()
		closed := r.closed
		r.mu.Unlock()
		if closed {
			continue
		}
		done := make(chan struct{})
		r.ch <- op{flush: done}
		<-done
	}
}

// Close stops all repliers.
func (p *Primary) Close() {
	p.mu.Lock()
	replicas := p.replicas
	p.replicas = nil
	p.mu.Unlock()
	for _, r := range replicas {
		r.stop()
	}
}

// ErrNilJournal is returned by Chain when no journals are supplied.
var ErrNilJournal = errors.New("replica: no journals to chain")

// Chain composes journals so the engine can feed the AOF and the replica
// fan-out simultaneously: db.SetJournal(replica.Chain(aofLog, primary)).
// It is a thin wrapper over store.NewMultiJournal that rejects the
// all-nil case.
func Chain(js ...store.Journal) (store.Journal, error) {
	j := store.NewMultiJournal(js...)
	if j == nil {
		return nil, ErrNilJournal
	}
	return j, nil
}
