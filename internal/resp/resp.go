// Package resp implements the REdis Serialization Protocol (RESP2), the
// wire format spoken between the gdprstore server and its clients. It is the
// same protocol real Redis v4 clients use, so the network-mode benchmarks
// exercise an equivalent parse/serialise path to the paper's setup.
//
// RESP2 types:
//
//	+OK\r\n                  simple string
//	-ERR message\r\n         error
//	:42\r\n                  integer
//	$5\r\nhello\r\n          bulk string ($-1 = null)
//	*2\r\n...                array (*-1 = null)
package resp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Type identifies a RESP value kind.
type Type byte

// RESP value kinds.
const (
	SimpleString Type = '+'
	Error        Type = '-'
	Integer      Type = ':'
	BulkString   Type = '$'
	Array        Type = '*'
)

// Value is one decoded RESP value.
type Value struct {
	Type  Type
	Str   []byte  // SimpleString, Error, BulkString payload
	Int   int64   // Integer payload
	Array []Value // Array payload
	Null  bool    // true for null bulk strings / null arrays
}

// Common protocol errors.
var (
	ErrProtocol = errors.New("resp: protocol error")
	// MaxBulkLen bounds a single bulk string (512 MB, Redis's limit). A
	// violated bound is a protocol error: the stream is unparseable past
	// it, and servers reply before disconnecting on ErrProtocol.
	errBulkTooLong = fmt.Errorf("%w: bulk string length out of range", ErrProtocol)
)

// MaxBulkLen is the largest accepted bulk string, matching Redis's
// proto-max-bulk-len default of 512 MB.
const MaxBulkLen = 512 << 20

// MaxArrayLen bounds a multibulk request, matching Redis's 1M element cap.
const MaxArrayLen = 1 << 20

// MaxLineLen bounds a simple-string/error/integer line, matching Redis's
// 64 KB inline limit. Without it, a malicious peer could stream an
// unterminated line and grow the reader's buffer without bound.
const MaxLineLen = 64 << 10

// Allocation guards: declared lengths are only trusted up to these sizes;
// larger payloads grow buffers incrementally as bytes actually arrive, so
// a forged "$536870912" or "*1000000" header alone cannot make the server
// allocate gigabytes (the attacker must send the bytes to cost the bytes).
const (
	bulkPreallocLimit  = 64 << 10
	arrayPreallocLimit = 1 << 10
)

// SimpleStringValue constructs a simple-string value.
func SimpleStringValue(s string) Value { return Value{Type: SimpleString, Str: []byte(s)} }

// ErrorValue constructs an error value.
func ErrorValue(msg string) Value { return Value{Type: Error, Str: []byte(msg)} }

// IntegerValue constructs an integer value.
func IntegerValue(n int64) Value { return Value{Type: Integer, Int: n} }

// BulkValue constructs a bulk-string value.
func BulkValue(b []byte) Value { return Value{Type: BulkString, Str: b} }

// BulkStringValue constructs a bulk-string value from a string.
func BulkStringValue(s string) Value { return Value{Type: BulkString, Str: []byte(s)} }

// NullValue constructs the null bulk string ($-1).
func NullValue() Value { return Value{Type: BulkString, Null: true} }

// NullArrayValue constructs the null array (*-1).
func NullArrayValue() Value { return Value{Type: Array, Null: true} }

// ArrayValue constructs an array value.
func ArrayValue(vs ...Value) Value { return Value{Type: Array, Array: vs} }

// CommandValue builds the client-side representation of a command: an array
// of bulk strings, exactly as redis-cli would send it.
func CommandValue(args ...string) Value {
	vs := make([]Value, len(args))
	for i, a := range args {
		vs[i] = BulkStringValue(a)
	}
	return ArrayValue(vs...)
}

// IsError reports whether v is a protocol-level error reply.
func (v Value) IsError() bool { return v.Type == Error }

// Text returns the value's string payload (for simple/bulk/error values).
func (v Value) Text() string { return string(v.Str) }

// Reader decodes RESP values from a stream.
type Reader struct {
	br *bufio.Reader
}

// parseInt converts a decimal ASCII line to int64 without the string
// conversion strconv.ParseInt would force (the line aliases the read
// buffer, so it must be consumed before the next read — which this does).
// It accepts exactly what the protocol produces: an optional sign and
// digits, no spaces, no empty input.
func parseInt(line []byte) (int64, bool) {
	if len(line) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	switch line[0] {
	case '-':
		neg = true
		i = 1
	case '+':
		i = 1
	}
	if i == len(line) {
		return 0, false
	}
	// Accumulate negatively: the int64 range is asymmetric and only the
	// negative side holds every magnitude (MinInt64 has no positive twin).
	var n int64
	for ; i < len(line); i++ {
		d := line[i] - '0'
		if d > 9 {
			return 0, false
		}
		if n < (-1<<63)/10 {
			return 0, false
		}
		n = n*10 - int64(d)
		if n > 0 {
			return 0, false
		}
	}
	if !neg {
		if n == -1<<63 {
			return 0, false
		}
		n = -n
	}
	return n, true
}

// NewReader wraps r in a buffered RESP decoder.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 16*1024)}
}

// Reset discards any buffered data and switches the decoder to read from
// rd, letting a Reader (and its 16 KB buffer) be reused across streams.
func (r *Reader) Reset(rd io.Reader) { r.br.Reset(rd) }

// ReadValue decodes the next value from the stream.
func (r *Reader) ReadValue() (Value, error) {
	return r.readValue(0)
}

// Buffered returns the number of bytes already read from the connection and
// waiting to be decoded. Servers use it to flush replies only when a
// pipelined batch has drained.
func (r *Reader) Buffered() int { return r.br.Buffered() }

const maxNestingDepth = 32

func (r *Reader) readValue(depth int) (Value, error) {
	if depth > maxNestingDepth {
		return Value{}, fmt.Errorf("%w: nesting too deep", ErrProtocol)
	}
	t, err := r.br.ReadByte()
	if err != nil {
		return Value{}, err
	}
	switch Type(t) {
	case SimpleString, Error:
		line, err := r.readLine()
		if err != nil {
			return Value{}, err
		}
		return Value{Type: Type(t), Str: line}, nil
	case Integer:
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		return Value{Type: Integer, Int: n}, nil
	case BulkString:
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		if n == -1 {
			return Value{Type: BulkString, Null: true}, nil
		}
		if n < 0 || n > MaxBulkLen {
			return Value{}, errBulkTooLong
		}
		buf, err := r.readN(n + 2)
		if err != nil {
			return Value{}, err
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return Value{}, fmt.Errorf("%w: bulk string missing CRLF", ErrProtocol)
		}
		return Value{Type: BulkString, Str: buf[:n]}, nil
	case Array:
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		if n == -1 {
			return Value{Type: Array, Null: true}, nil
		}
		if n < 0 || n > MaxArrayLen {
			return Value{}, fmt.Errorf("%w: invalid array length %d", ErrProtocol, n)
		}
		// Trust the declared element count only up to the prealloc limit:
		// beyond it the slice grows as elements actually parse, so a forged
		// header cannot reserve a million Value slots up front.
		prealloc := n
		if prealloc > arrayPreallocLimit {
			prealloc = arrayPreallocLimit
		}
		vs := make([]Value, 0, prealloc)
		for i := int64(0); i < n; i++ {
			v, err := r.readValue(depth + 1)
			if err != nil {
				return Value{}, err
			}
			vs = append(vs, v)
		}
		return Value{Type: Array, Array: vs}, nil
	default:
		return Value{}, fmt.Errorf("%w: unknown type byte %q", ErrProtocol, t)
	}
}

// ReadCommand decodes a client command (array of bulk strings) and returns
// its arguments. It rejects non-command values; inline commands are not
// supported.
func (r *Reader) ReadCommand() ([][]byte, error) {
	v, err := r.ReadValue()
	if err != nil {
		return nil, err
	}
	if v.Type != Array || v.Null || len(v.Array) == 0 {
		return nil, fmt.Errorf("%w: expected command array", ErrProtocol)
	}
	args := make([][]byte, len(v.Array))
	for i, e := range v.Array {
		if e.Type != BulkString || e.Null {
			return nil, fmt.Errorf("%w: command argument %d is not a bulk string", ErrProtocol, i)
		}
		args[i] = e.Str
	}
	return args, nil
}

// readN reads exactly n declared bytes, growing the buffer incrementally
// (doubling from bulkPreallocLimit) so the allocation tracks bytes actually
// received, never the declared length alone.
func (r *Reader) readN(n int64) ([]byte, error) {
	if n <= bulkPreallocLimit {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, bulkPreallocLimit)
	read := int64(0)
	for read < n {
		if read == int64(len(buf)) {
			grown := int64(len(buf)) * 2
			if grown > n {
				grown = n
			}
			nb := make([]byte, grown)
			copy(nb, buf)
			buf = nb
		}
		m, err := r.br.Read(buf[read:])
		read += int64(m)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return buf[:n], nil
}

func (r *Reader) readLine() ([]byte, error) {
	line, err := r.readLineInline()
	if err != nil {
		return nil, err
	}
	// The inline line aliases the read buffer; copy so the returned slice
	// survives the next read (it becomes a Value.Str the caller keeps).
	return append([]byte(nil), line...), nil
}

// readLineInline reads one CRLF-terminated line and returns it WITHOUT
// copying: the result aliases the read buffer and is valid only until the
// next read. Length headers and integers are parsed in place, so those
// paths skip the per-line copy readLine pays for payloads that escape.
func (r *Reader) readLineInline() ([]byte, error) {
	frag, err := r.br.ReadSlice('\n')
	if err == nil {
		// Fast path: the whole line sat in one buffer fill (the buffer is
		// smaller than MaxLineLen, so no length check is needed here).
		if len(frag) < 2 || frag[len(frag)-2] != '\r' {
			return nil, fmt.Errorf("%w: line missing CRLF", ErrProtocol)
		}
		return frag[: len(frag)-2 : len(frag)-2], nil
	}
	if err != bufio.ErrBufferFull {
		return nil, err
	}
	// Slow path: accumulate buffer-sized fragments so an unterminated line
	// fails at MaxLineLen instead of growing memory for as long as the
	// peer streams.
	line := append([]byte(nil), frag...)
	for {
		if len(line) > MaxLineLen {
			return nil, fmt.Errorf("%w: line exceeds %d bytes", ErrProtocol, MaxLineLen)
		}
		frag, err = r.br.ReadSlice('\n')
		line = append(line, frag...)
		if err == nil {
			break
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
	}
	if len(line) > MaxLineLen+2 {
		return nil, fmt.Errorf("%w: line exceeds %d bytes", ErrProtocol, MaxLineLen)
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("%w: line missing CRLF", ErrProtocol)
	}
	return line[:len(line)-2], nil
}

func (r *Reader) readInt() (int64, error) {
	line, err := r.readLineInline()
	if err != nil {
		return 0, err
	}
	n, ok := parseInt(line)
	if !ok {
		return 0, fmt.Errorf("%w: bad integer %q", ErrProtocol, line)
	}
	return n, nil
}

// Writer encodes RESP values onto a stream with an internal buffer; call
// Flush after writing a batch (pipelining-friendly).
type Writer struct {
	bw *bufio.Writer
	// scratch is the reusable buffer integer headers are formatted into,
	// so the hot encode path allocates nothing per value.
	scratch [24]byte
}

// NewWriter wraps w in a buffered RESP encoder.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 16*1024)}
}

// writeHeader emits one type byte, a decimal integer, and CRLF — the shape
// of every RESP length/integer header — via the scratch buffer.
func (w *Writer) writeHeader(t byte, n int64) error {
	buf := append(w.scratch[:0], t)
	buf = strconv.AppendInt(buf, n, 10)
	buf = append(buf, '\r', '\n')
	_, err := w.bw.Write(buf)
	return err
}

// WriteValue encodes v. The data is buffered until Flush.
func (w *Writer) WriteValue(v Value) error {
	switch v.Type {
	case SimpleString, Error:
		if err := w.bw.WriteByte(byte(v.Type)); err != nil {
			return err
		}
		if _, err := w.bw.Write(v.Str); err != nil {
			return err
		}
		return w.crlf()
	case Integer:
		return w.writeHeader(':', v.Int)
	case BulkString:
		if v.Null {
			_, err := w.bw.WriteString("$-1\r\n")
			return err
		}
		return w.writeBulk(v.Str)
	case Array:
		if v.Null {
			_, err := w.bw.WriteString("*-1\r\n")
			return err
		}
		if err := w.writeHeader('*', int64(len(v.Array))); err != nil {
			return err
		}
		for _, e := range v.Array {
			if err := w.WriteValue(e); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: cannot encode type %q", ErrProtocol, byte(v.Type))
	}
}

// writeBulk emits one bulk string: length header, payload, CRLF.
func (w *Writer) writeBulk(b []byte) error {
	if err := w.writeHeader('$', int64(len(b))); err != nil {
		return err
	}
	if _, err := w.bw.Write(b); err != nil {
		return err
	}
	return w.crlf()
}

// WriteCommand encodes a command as an array of bulk strings and buffers
// it, writing each argument directly — no intermediate Value tree.
func (w *Writer) WriteCommand(args ...string) error {
	if err := w.writeHeader('*', int64(len(args))); err != nil {
		return err
	}
	for _, a := range args {
		if err := w.writeHeader('$', int64(len(a))); err != nil {
			return err
		}
		if _, err := w.bw.WriteString(a); err != nil {
			return err
		}
		if err := w.crlf(); err != nil {
			return err
		}
	}
	return nil
}

// WriteCommandBytes encodes a command from raw byte arguments: the
// client's hot path. One call writes the whole multibulk — array header
// plus one bulk string per argument — straight into the buffer, avoiding
// the per-argument Value boxing WriteValue(ArrayValue(...)) would pay.
func (w *Writer) WriteCommandBytes(args [][]byte) error {
	if err := w.writeHeader('*', int64(len(args))); err != nil {
		return err
	}
	for _, a := range args {
		if err := w.writeBulk(a); err != nil {
			return err
		}
	}
	return nil
}

func (w *Writer) crlf() error {
	_, err := w.bw.WriteString("\r\n")
	return err
}

// Flush writes all buffered data to the underlying stream.
func (w *Writer) Flush() error { return w.bw.Flush() }
