package resp

import (
	"bytes"
	"strings"
	"testing"
)

// seedCorpus mixes well-formed values, the protocol edge cases the parser
// must reject, and resource-exhaustion headers the allocation guards must
// neutralise. Shared by both fuzz targets.
var seedCorpus = []string{
	"+OK\r\n",
	"-ERR something went wrong\r\n",
	":42\r\n",
	":-9223372036854775808\r\n",
	"$5\r\nhello\r\n",
	"$0\r\n\r\n",
	"$-1\r\n",
	"*-1\r\n",
	"*0\r\n",
	"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n",
	"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$3\r\nval\r\n",
	"*2\r\n*1\r\n:1\r\n$2\r\nab\r\n",
	"*1\r\n*1\r\n*1\r\n*1\r\n:0\r\n",
	// adversarial: forged giant headers, bad lengths, missing CRLF
	"$536870912\r\nx",
	"$99999999999999\r\n",
	"*1000000\r\n",
	"*1000000000\r\n",
	"$-2\r\n",
	"$3\r\nabcd\r\n",
	"$3\r\nab\r\n",
	"+no terminator",
	":notanint\r\n",
	"!bogus\r\n",
	"\x00\x01\x02",
	"*2\r\n$3\r\nGET\r\n:5\r\n",
	strings.Repeat("*1\r\n", 64) + ":1\r\n",
}

// valuesEqual compares decoded values structurally.
func valuesEqual(a, b Value) bool {
	if a.Type != b.Type || a.Null != b.Null || a.Int != b.Int {
		return false
	}
	if !bytes.Equal(a.Str, b.Str) {
		return false
	}
	if len(a.Array) != len(b.Array) {
		return false
	}
	for i := range a.Array {
		if !valuesEqual(a.Array[i], b.Array[i]) {
			return false
		}
	}
	return true
}

// FuzzReadValue asserts the core parser invariants on arbitrary bytes: it
// never panics, never allocates proportionally to a forged header (the
// guards turn those into errors), and every successfully parsed value
// re-encodes to bytes that parse back to an identical value.
func FuzzReadValue(f *testing.F) {
	for _, s := range seedCorpus {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		v, err := r.ReadValue()
		if err != nil {
			return
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteValue(v); err != nil {
			t.Fatalf("parsed value failed to encode: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		v2, err := NewReader(bytes.NewReader(buf.Bytes())).ReadValue()
		if err != nil {
			t.Fatalf("re-encoded value failed to parse: %v\nencoded: %q", err, buf.Bytes())
		}
		if !valuesEqual(v, v2) {
			t.Fatalf("round trip changed value:\n in: %#v\nout: %#v", v, v2)
		}
	})
}

// FuzzReadCommand asserts the command-path invariants: no panics, and any
// accepted command is a non-empty argument vector whose re-encoding parses
// to the same arguments — the property the server and the replication
// stream both rely on.
func FuzzReadCommand(f *testing.F) {
	for _, s := range seedCorpus {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		args, err := r.ReadCommand()
		if err != nil {
			return
		}
		if len(args) == 0 {
			t.Fatal("accepted empty command")
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		vs := make([]Value, len(args))
		for i, a := range args {
			vs[i] = BulkValue(a)
		}
		if err := w.WriteValue(ArrayValue(vs...)); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		args2, err := NewReader(bytes.NewReader(buf.Bytes())).ReadCommand()
		if err != nil {
			t.Fatalf("re-encoded command failed to parse: %v", err)
		}
		if len(args2) != len(args) {
			t.Fatalf("arg count changed: %d -> %d", len(args), len(args2))
		}
		for i := range args {
			if !bytes.Equal(args[i], args2[i]) {
				t.Fatalf("arg %d changed: %q -> %q", i, args[i], args2[i])
			}
		}
	})
}

// TestForgedHeadersDoNotPreallocate pins the allocation guards directly:
// headers declaring huge payloads must fail with bounded allocation once
// the stream ends, instead of reserving the declared size up front.
func TestForgedHeadersDoNotPreallocate(t *testing.T) {
	cases := []string{
		"$536870911\r\nonly-a-few-bytes",
		"*1048576\r\n:1\r\n",
		"$" + strings.Repeat("9", 14) + "\r\n",
	}
	for _, in := range cases {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := NewReader(strings.NewReader(in))
				if _, err := r.ReadValue(); err == nil {
					b.Fatalf("forged header %q accepted", in)
				}
			}
		})
		if per := res.AllocedBytesPerOp(); per > 256<<10 {
			t.Errorf("input %.20q allocates %d B/op — header-proportional allocation is back", in, per)
		}
	}
}

// TestUnterminatedLineBounded pins the line guard: a never-ending simple
// string line fails at MaxLineLen rather than buffering forever.
func TestUnterminatedLineBounded(t *testing.T) {
	in := "+" + strings.Repeat("a", MaxLineLen*4)
	r := NewReader(strings.NewReader(in))
	if _, err := r.ReadValue(); err == nil {
		t.Fatal("unterminated giant line accepted")
	}
}

// TestOversizedArrayHeaderRejected pins the MaxArrayLen cap.
func TestOversizedArrayHeaderRejected(t *testing.T) {
	r := NewReader(strings.NewReader("*1048577\r\n"))
	if _, err := r.ReadValue(); err == nil {
		t.Fatal("array beyond MaxArrayLen accepted")
	}
}
