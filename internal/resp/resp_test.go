package resp

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, v Value) Value {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteValue(v); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	got, err := NewReader(&buf).ReadValue()
	if err != nil {
		t.Fatalf("read back %q: %v", buf.String(), err)
	}
	return got
}

func TestSimpleStringRoundTrip(t *testing.T) {
	got := roundTrip(t, SimpleStringValue("OK"))
	if got.Type != SimpleString || got.Text() != "OK" {
		t.Fatalf("got %+v", got)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	got := roundTrip(t, ErrorValue("ERR something broke"))
	if !got.IsError() || got.Text() != "ERR something broke" {
		t.Fatalf("got %+v", got)
	}
}

func TestIntegerRoundTrip(t *testing.T) {
	for _, n := range []int64{0, 1, -1, 42, -9223372036854775808, 9223372036854775807} {
		got := roundTrip(t, IntegerValue(n))
		if got.Type != Integer || got.Int != n {
			t.Fatalf("n=%d got %+v", n, got)
		}
	}
}

func TestBulkRoundTrip(t *testing.T) {
	cases := [][]byte{[]byte(""), []byte("hello"), []byte("with\r\nCRLF\x00binary")}
	for _, c := range cases {
		got := roundTrip(t, BulkValue(c))
		if got.Type != BulkString || !bytes.Equal(got.Str, c) {
			t.Fatalf("case %q got %+v", c, got)
		}
	}
}

func TestNullBulk(t *testing.T) {
	got := roundTrip(t, NullValue())
	if got.Type != BulkString || !got.Null {
		t.Fatalf("got %+v", got)
	}
}

func TestNullArray(t *testing.T) {
	got := roundTrip(t, NullArrayValue())
	if got.Type != Array || !got.Null {
		t.Fatalf("got %+v", got)
	}
}

func TestNestedArrayRoundTrip(t *testing.T) {
	v := ArrayValue(
		IntegerValue(1),
		ArrayValue(BulkStringValue("nested"), NullValue()),
		SimpleStringValue("done"),
	)
	got := roundTrip(t, v)
	if len(got.Array) != 3 {
		t.Fatalf("len = %d", len(got.Array))
	}
	inner := got.Array[1]
	if inner.Type != Array || len(inner.Array) != 2 || !inner.Array[1].Null {
		t.Fatalf("inner = %+v", inner)
	}
}

func TestCommandRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteCommand("SET", "key1", "value1"); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	args, err := NewReader(&buf).ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("SET"), []byte("key1"), []byte("value1")}
	if !reflect.DeepEqual(args, want) {
		t.Fatalf("args = %q", args)
	}
}

func TestReadCommandRejectsNonArray(t *testing.T) {
	_, err := NewReader(strings.NewReader(":1\r\n")).ReadCommand()
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want protocol error", err)
	}
}

func TestReadCommandRejectsEmptyArray(t *testing.T) {
	_, err := NewReader(strings.NewReader("*0\r\n")).ReadCommand()
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadRejectsUnknownType(t *testing.T) {
	_, err := NewReader(strings.NewReader("!oops\r\n")).ReadValue()
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadRejectsBadInteger(t *testing.T) {
	_, err := NewReader(strings.NewReader(":abc\r\n")).ReadValue()
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadRejectsMissingCRLF(t *testing.T) {
	_, err := NewReader(strings.NewReader("$3\r\nabcXY")).ReadValue()
	if err == nil {
		t.Fatal("want error for corrupt bulk terminator")
	}
}

func TestReadRejectsOversizedBulk(t *testing.T) {
	_, err := NewReader(strings.NewReader("$999999999999\r\n")).ReadValue()
	if err == nil {
		t.Fatal("want error for oversized bulk")
	}
}

func TestReadRejectsNegativeArrayLen(t *testing.T) {
	_, err := NewReader(strings.NewReader("*-7\r\n")).ReadValue()
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadTruncatedStream(t *testing.T) {
	// A stream that ends mid-value must surface an EOF-ish error.
	_, err := NewReader(strings.NewReader("$10\r\nhello")).ReadValue()
	if err == nil {
		t.Fatal("want error for truncated bulk")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF-like", err)
	}
}

func TestDeepNestingRejected(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 64; i++ {
		b.WriteString("*1\r\n")
	}
	b.WriteString(":1\r\n")
	_, err := NewReader(strings.NewReader(b.String())).ReadValue()
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want nesting rejection", err)
	}
}

func TestPipelinedValues(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		if err := w.WriteCommand("PING"); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i := 0; i < 10; i++ {
		args, err := r.ReadCommand()
		if err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
		if string(args[0]) != "PING" {
			t.Fatalf("command %d = %q", i, args[0])
		}
	}
}

func TestCommandPropertyRoundTrip(t *testing.T) {
	// Property: any non-empty list of arbitrary byte strings survives the
	// command encode/decode round trip.
	f := func(raw [][]byte) bool {
		if len(raw) == 0 {
			raw = [][]byte{[]byte("X")}
		}
		vs := make([]Value, len(raw))
		for i, b := range raw {
			vs[i] = BulkValue(b)
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteValue(ArrayValue(vs...)); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := NewReader(&buf).ReadCommand()
		if err != nil {
			return false
		}
		if len(got) != len(raw) {
			return false
		}
		for i := range raw {
			if !bytes.Equal(got[i], raw[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntegerPropertyRoundTrip(t *testing.T) {
	f := func(n int64) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if w.WriteValue(IntegerValue(n)) != nil || w.Flush() != nil {
			return false
		}
		v, err := NewReader(&buf).ReadValue()
		return err == nil && v.Int == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- allocation budgets for the client hot path ---

// TestWriteCommandBytesAllocFree pins the encode fast path at zero
// allocations per command: headers come from the Writer's scratch array
// and payloads are written through without boxing into Values.
func TestWriteCommandBytesAllocFree(t *testing.T) {
	w := NewWriter(io.Discard)
	args := [][]byte{[]byte("SET"), []byte("user0000000042"), make([]byte, 100)}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := w.WriteCommandBytes(args); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WriteCommandBytes allocates %.1f objects/op, want 0", allocs)
	}
}

// TestReadIntegerAllocFree pins integer replies (and by extension every
// length header) at zero allocations: the digits are parsed in place from
// the buffered line, never copied out.
func TestReadIntegerAllocFree(t *testing.T) {
	wire := bytes.Repeat([]byte(":1234567890\r\n"), 2000)
	rd := bytes.NewReader(wire)
	r := NewReader(rd)
	allocs := testing.AllocsPerRun(1000, func() {
		v, err := r.ReadValue()
		if err != nil || v.Int != 1234567890 {
			t.Fatalf("ReadValue = %v, %v", v, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("integer reply read allocates %.1f objects/op, want 0", allocs)
	}
}
