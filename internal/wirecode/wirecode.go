// Package wirecode is the single table of RESP error-code prefixes the
// server emits and the client decodes. The server's errReply consults
// Code to choose a prefix for a compliance-layer error; the public SDK's
// error mapper (pkg/gdprkv) consults Split + the same constants to turn
// the prefix back into a typed sentinel. Because both directions share
// this table, a new error class added here is round-trippable by
// construction — the surfaces cannot drift apart.
package wirecode

import (
	"errors"
	"strings"

	"gdprstore/internal/core"
)

// Wire code prefixes. An error reply's text is "<CODE> <message>"; CODE
// is the first space-separated token.
const (
	// Err is the generic Redis-style error prefix, used when no more
	// specific code applies.
	Err = "ERR"
	// Denied reports an access-control rejection (Art. 25/32).
	Denied = "DENIED"
	// PurposeDenied reports a purpose-limitation rejection (Art. 5/21).
	PurposeDenied = "PURPOSEDENIED"
	// Policy reports a write that violates storage policy: missing owner,
	// missing retention bound, or disallowed location (Art. 5/46).
	Policy = "POLICY"
	// Erased reports an operation against a crypto-shredded owner (Art. 17).
	Erased = "ERASED"
	// Baseline reports a GDPR command against a non-compliant store.
	Baseline = "BASELINE"
	// ReadOnly is Redis's replica-mode write rejection prefix.
	ReadOnly = "READONLY"
	// Moved is the cluster redirection prefix: the key's slot lives on
	// another node. The text is "MOVED <slot> <host:port>", Redis's exact
	// shape, so cluster-aware clients can follow it.
	Moved = "MOVED"
	// CrossSlot rejects a multi-key command whose keys hash to different
	// slots (Redis's exact prefix).
	CrossSlot = "CROSSSLOT"
	// Ask is the one-shot migration redirection prefix: the key's slot is
	// mid-migration and this key has already moved. The text is
	// "ASK <slot> <host:port>", Redis's exact shape; the client retries
	// that one command at the target after an ASKING handshake, without
	// updating its slot map (ownership has not changed yet).
	Ask = "ASK"
	// ClusterDown reports a cluster-wide operation (rights fan-out) that
	// could not reach every node. The operation is deliberately
	// all-or-reported: partial completion is surfaced, never hidden.
	ClusterDown = "CLUSTERDOWN"
)

// known is the set of prefixes Split recognises as codes.
var known = map[string]bool{
	Err: true, Denied: true, PurposeDenied: true, Policy: true,
	Erased: true, Baseline: true, ReadOnly: true,
	Moved: true, CrossSlot: true, ClusterDown: true, Ask: true,
}

// Entry maps one compliance-layer sentinel to its wire code.
type Entry struct {
	// Target is the core sentinel matched with errors.Is.
	Target error
	// Code is the prefix the server writes before the error text.
	Code string
}

// Table is the server-side mapping, in match order. core.ErrNotFound is
// deliberately absent: the server reports a missing key as a null bulk
// string, not an error reply, exactly like Redis.
var Table = []Entry{
	{core.ErrDenied, Denied},
	{core.ErrPurposeDenied, PurposeDenied},
	{core.ErrNoOwner, Policy},
	{core.ErrNoTTL, Policy},
	{core.ErrLocationDenied, Policy},
	{core.ErrErased, Erased},
	{core.ErrNotCompliant, Baseline},
}

// Code returns the wire code for err: the first Table entry err matches,
// or Err when none does.
func Code(err error) string {
	for _, e := range Table {
		if errors.Is(err, e.Target) {
			return e.Code
		}
	}
	return Err
}

// Split decodes an error reply's text into its code and message. Replies
// whose first token is not a known code are reported whole under Err, so
// free-form server errors still decode.
func Split(text string) (code, msg string) {
	head, rest, _ := strings.Cut(text, " ")
	if known[head] {
		return head, rest
	}
	return Err, text
}
