package wirecode

import (
	"fmt"
	"testing"

	"gdprstore/internal/core"
)

func TestCodeMapsEveryTableEntry(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{core.ErrDenied, Denied},
		{core.ErrPurposeDenied, PurposeDenied},
		{core.ErrNoOwner, Policy},
		{core.ErrNoTTL, Policy},
		{core.ErrLocationDenied, Policy},
		{core.ErrErased, Erased},
		{core.ErrNotCompliant, Baseline},
		{fmt.Errorf("anything else"), Err},
	}
	for _, c := range cases {
		if got := Code(c.err); got != c.want {
			t.Errorf("Code(%v) = %q, want %q", c.err, got, c.want)
		}
		// Wrapped errors map identically (handlers wrap with %w).
		if got := Code(fmt.Errorf("ctx: %w", c.err)); got != c.want {
			t.Errorf("Code(wrapped %v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestSplitRoundTripsCode asserts the decode direction recognises every
// code the encode direction can produce — the drift the shared table is
// there to prevent.
func TestSplitRoundTripsCode(t *testing.T) {
	for _, e := range Table {
		text := e.Code + " " + e.Target.Error()
		code, msg := Split(text)
		if code != e.Code || msg != e.Target.Error() {
			t.Errorf("Split(%q) = %q, %q", text, code, msg)
		}
	}
	if code, msg := Split("READONLY You can't write against a read only replica."); code != ReadOnly ||
		msg != "You can't write against a read only replica." {
		t.Errorf("Split(READONLY ...) = %q, %q", code, msg)
	}
	// Free-form text without a known prefix decodes whole under Err.
	if code, msg := Split("something unprefixed went wrong"); code != Err ||
		msg != "something unprefixed went wrong" {
		t.Errorf("Split(unprefixed) = %q, %q", code, msg)
	}
	if code, msg := Split("ERR wrong number of arguments"); code != Err || msg != "wrong number of arguments" {
		t.Errorf("Split(ERR ...) = %q, %q", code, msg)
	}
}
