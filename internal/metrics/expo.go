package metrics

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a hand-rolled encoder for the Prometheus text exposition
// format (version 0.0.4) — the `GET /metrics` wire format. Pulling in the
// Prometheus client library for what is a few dozen lines of text
// formatting would be the project's first external dependency; instead the
// encoder emits the format directly and the tests pin it with a minimal
// line-grammar checker.

// Label is one name="value" pair attached to a sample.
type Label struct {
	Name  string
	Value string
}

// Exposition accumulates metric families in the text exposition format.
// Families are written in call order; the HELP/TYPE header of each metric
// name is emitted once, before its first sample, as the format requires.
// An Exposition is single-use and not safe for concurrent writers.
type Exposition struct {
	b      strings.Builder
	headed map[string]bool
}

// NewExposition returns an empty exposition buffer, pre-sized so a
// typical scrape never reallocates mid-render.
func NewExposition() *Exposition {
	e := &Exposition{headed: make(map[string]bool, 32)}
	e.b.Grow(8192)
	return e
}

// Gauge emits one gauge sample.
func (e *Exposition) Gauge(name, help string, value float64, labels ...Label) {
	e.header(name, help, "gauge")
	e.sample(name, value, labels)
}

// Counter emits one counter sample. Prometheus convention wants counter
// names suffixed `_total`; callers pass the full name.
func (e *Exposition) Counter(name, help string, value float64, labels ...Label) {
	e.header(name, help, "counter")
	e.sample(name, value, labels)
}

// Summary emits a summary family from a latency histogram: one
// quantile-labelled sample per given quantile (in seconds), plus the
// `_sum` and `_count` series. Extra labels apply to every sample, letting
// one family carry per-operation series (e.g. {op="GET"}).
func (e *Exposition) Summary(name, help string, h *Histogram, quantiles []float64, labels ...Label) {
	e.header(name, help, "summary")
	vals := h.Percentiles(quantiles...) // ascending q, one bucket walk
	sorted := append([]float64(nil), quantiles...)
	sort.Float64s(sorted)
	for i, q := range sorted {
		ql := append(append([]Label(nil), labels...),
			Label{Name: "quantile", Value: formatFloat(q)})
		e.sample(name, vals[i].Seconds(), ql)
	}
	e.sample(name+"_sum", h.Sum().Seconds(), labels)
	e.sample(name+"_count", float64(h.Count()), labels)
}

// String returns the accumulated exposition text.
func (e *Exposition) String() string { return e.b.String() }

// Len returns the accumulated byte length.
func (e *Exposition) Len() int { return e.b.Len() }

func (e *Exposition) header(name, help, typ string) {
	if e.headed[name] {
		return
	}
	e.headed[name] = true
	e.b.WriteString("# HELP ")
	e.b.WriteString(name)
	e.b.WriteByte(' ')
	e.b.WriteString(escapeHelp(help))
	e.b.WriteString("\n# TYPE ")
	e.b.WriteString(name)
	e.b.WriteByte(' ')
	e.b.WriteString(typ)
	e.b.WriteByte('\n')
}

func (e *Exposition) sample(name string, value float64, labels []Label) {
	e.b.WriteString(name)
	if len(labels) > 0 {
		e.b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				e.b.WriteByte(',')
			}
			e.b.WriteString(l.Name)
			e.b.WriteString(`="`)
			e.b.WriteString(escapeLabel(l.Value))
			e.b.WriteByte('"')
		}
		e.b.WriteByte('}')
	}
	e.b.WriteByte(' ')
	e.b.WriteString(formatFloat(value))
	e.b.WriteByte('\n')
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, with the spec's spellings for specials.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP docstring: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
