// Package metrics provides the measurement primitives used by the YCSB and
// GDPRbench harnesses: a fixed-memory logarithmic latency histogram with
// quantile estimation, and throughput counters. It mirrors what the YCSB
// "hdrhistogram" measurement module reports (ops/sec, avg, p50/p95/p99/max).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// bucketCount covers latencies from 1ns up to ~1099s using sub-bucketed
// powers of two: 64 exponents x 32 linear sub-buckets.
const (
	histExponents  = 40
	histSubBuckets = 32
	bucketCount    = histExponents * histSubBuckets
)

// Histogram is a concurrency-safe logarithmic histogram of durations.
// Construct with NewHistogram.
type Histogram struct {
	buckets [bucketCount]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds
	min     atomic.Uint64
	max     atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxUint64)
	return h
}

func bucketIndex(ns uint64) int {
	if ns == 0 {
		return 0
	}
	// exponent: position of highest set bit
	exp := 63 - leadingZeros64(ns)
	if exp < 5 {
		// values < 32ns land in the first linear region
		return int(ns)
	}
	sub := (ns >> (uint(exp) - 5)) & (histSubBuckets - 1)
	idx := (exp-4)*histSubBuckets + int(sub)
	if idx >= bucketCount {
		idx = bucketCount - 1
	}
	return idx
}

// bucketLow returns a representative (lower-bound) value for bucket i,
// inverse of bucketIndex.
func bucketLow(i int) uint64 {
	if i < histSubBuckets {
		return uint64(i)
	}
	exp := i/histSubBuckets + 4
	sub := uint64(i % histSubBuckets)
	return (1 << uint(exp)) | (sub << (uint(exp) - 5))
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Record adds one duration observation. Negative durations count as zero.
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if ns >= cur {
			break
		}
		if h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean recorded duration.
func (h *Histogram) Mean() time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / c)
}

// Sum returns the total of every recorded duration — the `_sum` series of
// a Prometheus summary built from this histogram.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the largest recorded duration (bucket-quantised lower bound
// for large values, exact for small ones).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Min returns the smallest recorded duration.
func (h *Histogram) Min() time.Duration {
	m := h.min.Load()
	if m == math.MaxUint64 {
		return 0
	}
	return time.Duration(m)
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) of recorded
// durations. It returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < bucketCount; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return time.Duration(bucketLow(i))
		}
	}
	return time.Duration(h.max.Load())
}

// Snapshot is an immutable summary of a histogram.
type Snapshot struct {
	Count uint64
	Mean  time.Duration
	Min   time.Duration
	Max   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	P999  time.Duration
}

// Snapshot captures the current summary statistics.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}

// String formats the snapshot in YCSB-report style.
func (s Snapshot) String() string {
	return fmt.Sprintf("count=%d mean=%v min=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean, s.Min, s.P50, s.P95, s.P99, s.Max)
}

// Merge adds every observation bucket of other into h. Min/max/sum/count are
// combined. Merge is safe to call concurrently with Record, with the usual
// racy-snapshot caveat.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := 0; i < bucketCount; i++ {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	om := other.min.Load()
	for {
		cur := h.min.Load()
		if om >= cur {
			break
		}
		if h.min.CompareAndSwap(cur, om) {
			break
		}
	}
	oM := other.max.Load()
	for {
		cur := h.max.Load()
		if oM <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, oM) {
			break
		}
	}
}

// Percentiles returns the given quantiles sorted by q, resolved in a
// single cumulative walk of the buckets (Quantile walks once per call, so
// for k quantiles this is k× cheaper — the /metrics render path depends
// on it).
func (h *Histogram) Percentiles(qs ...float64) []time.Duration {
	sorted := append([]float64(nil), qs...)
	sort.Float64s(sorted)
	out := make([]time.Duration, len(sorted))
	total := h.count.Load()
	if total == 0 {
		return out
	}
	next := 0
	var cum uint64
	for i := 0; i < bucketCount && next < len(sorted); i++ {
		cum += h.buckets[i].Load()
		for next < len(sorted) {
			q := sorted[next]
			if q < 0 {
				q = 0
			}
			if q > 1 {
				q = 1
			}
			target := uint64(math.Ceil(q * float64(total)))
			if target == 0 {
				target = 1
			}
			if cum < target {
				break
			}
			out[next] = time.Duration(bucketLow(i))
			next++
		}
	}
	for ; next < len(sorted); next++ {
		out[next] = time.Duration(h.max.Load())
	}
	return out
}
