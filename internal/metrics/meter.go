package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Meter counts operations and derives throughput over an explicit window.
type Meter struct {
	ops   atomic.Uint64
	start time.Time
}

// NewMeter returns a meter whose window starts now.
func NewMeter(start time.Time) *Meter {
	return &Meter{start: start}
}

// Add records n completed operations.
func (m *Meter) Add(n uint64) { m.ops.Add(n) }

// Ops returns the total operation count.
func (m *Meter) Ops() uint64 { return m.ops.Load() }

// Throughput returns operations per second over [start, now].
func (m *Meter) Throughput(now time.Time) float64 {
	elapsed := now.Sub(m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.ops.Load()) / elapsed
}

// OpStats couples a histogram with an op counter for one operation type
// (READ, UPDATE, INSERT, SCAN, ...), matching YCSB's per-op reporting.
type OpStats struct {
	Name string
	Hist *Histogram
}

// NewOpStats returns stats for the named operation.
func NewOpStats(name string) *OpStats {
	return &OpStats{Name: name, Hist: NewHistogram()}
}

// Record adds a latency observation.
func (s *OpStats) Record(d time.Duration) { s.Hist.Record(d) }

// OpSet is a concurrency-safe collection of per-operation stats keyed by
// name. The RESP server keeps one per command; benchmarks can keep one per
// workload phase. Get is cheap after first use (read-locked map hit), and
// recording on the returned OpStats is lock-free.
type OpSet struct {
	mu       sync.RWMutex
	m        map[string]*OpStats
	counters *CounterSet
}

// NewOpSet returns an empty set.
func NewOpSet() *OpSet { return &OpSet{m: make(map[string]*OpStats)} }

// Get returns the stats for name, creating them on first use.
func (s *OpSet) Get(name string) *OpStats {
	s.mu.RLock()
	st, ok := s.m[name]
	s.mu.RUnlock()
	if ok {
		return st
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.m[name]; ok {
		return st
	}
	st = NewOpStats(name)
	s.m[name] = st
	return st
}

// Names returns the recorded operation names, sorted.
func (s *OpSet) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.m))
	for n := range s.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshots returns a summary per operation that has at least one
// observation.
func (s *OpSet) Snapshots() map[string]Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]Snapshot, len(s.m))
	for n, st := range s.m {
		if st.Hist.Count() > 0 {
			out[n] = st.Hist.Snapshot()
		}
	}
	return out
}
