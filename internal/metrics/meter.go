package metrics

import (
	"sync/atomic"
	"time"
)

// Meter counts operations and derives throughput over an explicit window.
type Meter struct {
	ops   atomic.Uint64
	start time.Time
}

// NewMeter returns a meter whose window starts now.
func NewMeter(start time.Time) *Meter {
	return &Meter{start: start}
}

// Add records n completed operations.
func (m *Meter) Add(n uint64) { m.ops.Add(n) }

// Ops returns the total operation count.
func (m *Meter) Ops() uint64 { return m.ops.Load() }

// Throughput returns operations per second over [start, now].
func (m *Meter) Throughput(now time.Time) float64 {
	elapsed := now.Sub(m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.ops.Load()) / elapsed
}

// OpStats couples a histogram with an op counter for one operation type
// (READ, UPDATE, INSERT, SCAN, ...), matching YCSB's per-op reporting.
type OpStats struct {
	Name string
	Hist *Histogram
}

// NewOpStats returns stats for the named operation.
func NewOpStats(name string) *OpStats {
	return &OpStats{Name: name, Hist: NewHistogram()}
}

// Record adds a latency observation.
func (s *OpStats) Record(d time.Duration) { s.Hist.Record(d) }
