package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 {
		t.Fatalf("empty histogram count = %d", h.Count())
	}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(100 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if h.Mean() != 100*time.Microsecond {
		t.Fatalf("mean = %v, want 100µs", h.Mean())
	}
	// Quantile is bucket-quantised: accept within one sub-bucket (~3.2%).
	q := h.Quantile(0.5)
	if q < 95*time.Microsecond || q > 105*time.Microsecond {
		t.Fatalf("p50 = %v, want ≈100µs", q)
	}
}

func TestHistogramMinMax(t *testing.T) {
	h := NewHistogram()
	h.Record(5 * time.Millisecond)
	h.Record(1 * time.Millisecond)
	h.Record(9 * time.Millisecond)
	if h.Min() != time.Millisecond {
		t.Fatalf("min = %v, want 1ms", h.Min())
	}
	if h.Max() != 9*time.Millisecond {
		t.Fatalf("max = %v, want 9ms", h.Max())
	}
}

func TestHistogramNegativeCountsAsZero(t *testing.T) {
	h := NewHistogram()
	h.Record(-time.Second)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 {
		t.Fatalf("min = %v, want 0", h.Min())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Against a known uniform distribution, quantile estimates must be
	// within bucket resolution (1/32 ≈ 3.2%) of the exact value.
	h := NewHistogram()
	rng := rand.New(rand.NewSource(7))
	var exact []time.Duration
	for i := 0; i < 100000; i++ {
		d := time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
		exact = append(exact, d)
		h.Record(d)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		want := exact[int(q*float64(len(exact)))-1]
		got := h.Quantile(q)
		lo := time.Duration(float64(want) * 0.93)
		hi := time.Duration(float64(want) * 1.07)
		if got < lo || got > hi {
			t.Errorf("q%.2f = %v, want within [%v, %v]", q, got, lo, hi)
		}
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	// Property: for any set of recorded durations, quantiles are monotonic
	// in q and bounded by [min-bucket, max].
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		h := NewHistogram()
		for _, s := range samples {
			h.Record(time.Duration(s))
		}
		prev := time.Duration(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Quantile(1) <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Property: bucketLow(bucketIndex(v)) <= v and the gap is within one
	// sub-bucket width.
	f := func(v uint32) bool {
		ns := uint64(v)
		i := bucketIndex(ns)
		low := bucketLow(i)
		if low > ns {
			return false
		}
		// next bucket's low must exceed ns
		if i+1 < bucketCount && bucketLow(i+1) <= ns {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const goroutines, per = 8, 10000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	b.Record(5 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d, want 3", a.Count())
	}
	if a.Min() != time.Millisecond {
		t.Fatalf("merged min = %v", a.Min())
	}
	if a.Max() != 5*time.Millisecond {
		t.Fatalf("merged max = %v", a.Max())
	}
	a.Merge(nil) // must not panic
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("snapshot count = %d", s.Count)
	}
	if s.String() == "" {
		t.Fatal("empty snapshot string")
	}
}

func TestMeter(t *testing.T) {
	start := time.Now()
	m := NewMeter(start)
	m.Add(500)
	m.Add(500)
	if m.Ops() != 1000 {
		t.Fatalf("ops = %d", m.Ops())
	}
	thr := m.Throughput(start.Add(2 * time.Second))
	if thr != 500 {
		t.Fatalf("throughput = %v, want 500", thr)
	}
	if m.Throughput(start) != 0 {
		t.Fatal("zero-elapsed throughput must be 0")
	}
}

func TestPercentilesSorted(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	ps := h.Percentiles(0.99, 0.5, 0.9)
	if len(ps) != 3 {
		t.Fatalf("len = %d", len(ps))
	}
	if !(ps[0] <= ps[1] && ps[1] <= ps[2]) {
		t.Fatalf("percentiles not sorted: %v", ps)
	}
}

func TestOpStats(t *testing.T) {
	s := NewOpStats("READ")
	s.Record(time.Millisecond)
	if s.Hist.Count() != 1 || s.Name != "READ" {
		t.Fatal("OpStats wiring broken")
	}
}
