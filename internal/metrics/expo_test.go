package metrics

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// checkExposition is a minimal validator for the Prometheus text format
// (0.0.4): every line must be a well-formed HELP/TYPE comment or a sample
// line `name{label="value",...} <float>`, TYPE must precede the first
// sample of its metric and appear once, and summary quantile samples must
// carry a quantile label. It is deliberately a from-scratch grammar check
// (no Prometheus dependency) so encoder bugs can't be self-consistent.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	typed := make(map[string]string)
	sampled := make(map[string]bool)
	validName := func(s string) bool {
		if s == "" {
			return false
		}
		for i, r := range s {
			alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
			if !alpha && (i == 0 || r < '0' || r > '9') {
				return false
			}
		}
		return true
	}
	family := func(name string) string {
		for _, suf := range []string{"_sum", "_count"} {
			if base := strings.TrimSuffix(name, suf); base != name && typed[base] != "" {
				return base
			}
		}
		return name
	}
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", lineNo, line)
			}
			if !validName(parts[2]) {
				t.Fatalf("line %d: bad metric name %q", lineNo, parts[2])
			}
			if parts[1] == "TYPE" {
				switch parts[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					t.Fatalf("line %d: bad TYPE %q", lineNo, parts[3])
				}
				if typed[parts[2]] != "" {
					t.Fatalf("line %d: duplicate TYPE for %q", lineNo, parts[2])
				}
				if sampled[parts[2]] {
					t.Fatalf("line %d: TYPE for %q after its samples", lineNo, parts[2])
				}
				typed[parts[2]] = parts[3]
			}
			continue
		}
		// Sample line: name[{labels}] value
		rest := line
		name := rest
		labels := ""
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			name = rest[:i]
			j := strings.IndexByte(rest, '}')
			if j < i {
				t.Fatalf("line %d: unclosed label set: %q", lineNo, line)
			}
			labels = rest[i+1 : j]
			rest = name + rest[j+1:]
		}
		fields := strings.Split(rest, " ")
		if len(fields) != 2 {
			t.Fatalf("line %d: want 'name value', got %q", lineNo, line)
		}
		name = fields[0]
		if !validName(name) {
			t.Fatalf("line %d: bad sample name %q", lineNo, name)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", lineNo, fields[1], err)
		}
		fam := family(name)
		if typed[fam] == "" {
			t.Fatalf("line %d: sample %q before any TYPE for %q", lineNo, name, fam)
		}
		sampled[fam] = true
		hasQuantile := false
		if labels != "" {
			for _, pair := range strings.Split(labels, ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || !validName(k) {
					t.Fatalf("line %d: bad label pair %q", lineNo, pair)
				}
				if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Fatalf("line %d: unquoted label value %q", lineNo, pair)
				}
				if k == "quantile" {
					hasQuantile = true
				}
			}
		}
		if typed[fam] == "summary" && name == fam && !hasQuantile {
			t.Fatalf("line %d: summary sample %q lacks quantile label", lineNo, line)
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	e := NewExposition()
	e.Gauge("gdprkv_retention_lag_seconds", "age of oldest overdue record", 1.25)
	e.Counter("gdprkv_commands_total", "commands processed", 42)
	e.Summary("gdprkv_command_duration_seconds", "per-command latency", h,
		[]float64{0.5, 0.99}, Label{Name: "op", Value: "GET"})
	e.Summary("gdprkv_command_duration_seconds", "per-command latency", h,
		[]float64{0.5, 0.99}, Label{Name: "op", Value: "SET"})
	out := e.String()
	checkExposition(t, out)

	for _, want := range []string{
		"# TYPE gdprkv_retention_lag_seconds gauge",
		"gdprkv_retention_lag_seconds 1.25",
		"# TYPE gdprkv_commands_total counter",
		"gdprkv_commands_total 42",
		"# TYPE gdprkv_command_duration_seconds summary",
		`gdprkv_command_duration_seconds{op="GET",quantile="0.5"}`,
		`gdprkv_command_duration_seconds_count{op="SET"} 1000`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The shared family header must be emitted exactly once even though two
	// label sets contributed samples.
	if n := strings.Count(out, "# TYPE gdprkv_command_duration_seconds summary"); n != 1 {
		t.Errorf("summary TYPE emitted %d times, want 1", n)
	}
}

func TestExpositionEscaping(t *testing.T) {
	e := NewExposition()
	e.Gauge("g_x", "help with \\ and\nnewline", 1,
		Label{Name: "detail", Value: "quote \" slash \\ nl\n"})
	out := e.String()
	checkExposition(t, out)
	if !strings.Contains(out, `# HELP g_x help with \\ and\nnewline`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `detail="quote \" slash \\ nl\n"`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestExpositionSpecialValues(t *testing.T) {
	for v, want := range map[float64]string{
		0: "g 0\n",
	} {
		e := NewExposition()
		e.Gauge("g", "h", v)
		if !strings.HasSuffix(e.String(), want) {
			t.Errorf("value %v rendered %q, want suffix %q", v, e.String(), want)
		}
	}
	if got := formatFloat(float64(1) / 3); got != "0.3333333333333333" {
		t.Errorf("formatFloat(1/3) = %q", got)
	}
}

func TestHistogramSum(t *testing.T) {
	h := NewHistogram()
	h.Record(2 * time.Millisecond)
	h.Record(3 * time.Millisecond)
	if got := h.Sum(); got != 5*time.Millisecond {
		t.Errorf("Sum() = %v, want 5ms", got)
	}
}

// The checker itself must reject malformed expositions, or the format
// tests above prove nothing.
func TestExpositionCheckerRejects(t *testing.T) {
	bad := []string{
		"metric_without_type 1\n",
		"# TYPE m gauge\nm not-a-number\n",
		"# TYPE m gauge\n# TYPE m gauge\nm 1\n",
		"# TYPE m banana\nm 1\n",
		"# TYPE m summary\nm 0.5\n", // summary sample without quantile
		"# TYPE m gauge\nm{l=unquoted} 1\n",
	}
	for _, text := range bad {
		mock := &testing.T{}
		// Fatalf on a bare testing.T calls runtime.Goexit, so the probe
		// runs in its own goroutine.
		done := make(chan struct{})
		go func() {
			defer close(done)
			checkExposition(mock, text)
		}()
		<-done
		if !mock.Failed() {
			t.Errorf("checker accepted malformed exposition:\n%s", text)
		}
	}
}
