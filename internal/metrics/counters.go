package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a lock-free monotonic event counter. The zero value is ready
// to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// CounterSet is a concurrency-safe collection of named counters, the
// counter-shaped sibling of OpSet: OpSet holds per-operation latency
// histograms, CounterSet holds per-event totals (enqueues, drops, sync
// errors, ...). Get is cheap after first use (read-locked map hit) and
// incrementing the returned Counter is lock-free, so counters can sit on
// hot paths like the audit pipeline's enqueue.
type CounterSet struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// NewCounterSet returns an empty set.
func NewCounterSet() *CounterSet { return &CounterSet{m: make(map[string]*Counter)} }

// Get returns the counter for name, creating it on first use.
func (s *CounterSet) Get(name string) *Counter {
	s.mu.RLock()
	c, ok := s.m[name]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.m[name]; ok {
		return c
	}
	c = &Counter{}
	s.m[name] = c
	return c
}

// Names returns the registered counter names, sorted.
func (s *CounterSet) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.m))
	for n := range s.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a point-in-time copy of every counter value.
func (s *CounterSet) Snapshot() map[string]uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]uint64, len(s.m))
	for n, c := range s.m {
		out[n] = c.Load()
	}
	return out
}

// Counters returns the counter set attached to this OpSet, creating it on
// first use. It lets a subsystem that already reports latency through an
// OpSet surface its event totals (queue drops, sink errors, ...) alongside
// without a second registry.
func (s *OpSet) Counters() *CounterSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.counters == nil {
		s.counters = NewCounterSet()
	}
	return s.counters
}
