// Package backup provides the backup half of the paper's Article 17
// requirement: erased personal data must not survive in backups. A backup
// is a point-in-time snapshot of the engine in the same RESP command
// format the AOF uses, optionally block-encrypted at rest (the LUKS
// stand-in). The Manager tracks a backup directory and supports the two
// compliant erasure strategies:
//
//   - Refresh: re-snapshot after erasure and delete older generations, so
//     no backup older than the erasure survives (what Google Cloud's
//     ~180-day deletion guarantee amounts to, done eagerly);
//   - crypto-shredding (when the store uses envelope encryption): backups
//     contain only per-owner ciphertext, so destroying the owner's key in
//     the keyring renders every backup generation unreadable without
//     touching the files.
package backup

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"gdprstore/internal/clock"
	"gdprstore/internal/cryptoutil"
	"gdprstore/internal/resp"
	"gdprstore/internal/store"
)

// Write streams a snapshot of db to w, optionally encrypted with key.
func Write(db *store.DB, w io.Writer, key []byte) error {
	var sink io.Writer = w
	if key != nil {
		c, err := cryptoutil.NewOffsetCipher(key)
		if err != nil {
			return err
		}
		sink = cryptoutil.NewWriter(w, c, 0)
	}
	bw := bufio.NewWriterSize(sink, 256*1024)
	enc := resp.NewWriter(bw)
	err := db.Snapshot(func(name string, args ...[]byte) error {
		vs := make([]resp.Value, 0, len(args)+1)
		vs = append(vs, resp.BulkStringValue(name))
		for _, a := range args {
			vs = append(vs, resp.BulkValue(a))
		}
		return enc.WriteValue(resp.ArrayValue(vs...))
	})
	if err != nil {
		return fmt.Errorf("backup: snapshot: %w", err)
	}
	if err := enc.Flush(); err != nil {
		return err
	}
	return bw.Flush()
}

// Restore replays a backup stream into db.
func Restore(db *store.DB, r io.Reader, key []byte) (int, error) {
	var src io.Reader = r
	if key != nil {
		c, err := cryptoutil.NewOffsetCipher(key)
		if err != nil {
			return 0, err
		}
		src = cryptoutil.NewReader(r, c)
	}
	dec := resp.NewReader(bufio.NewReaderSize(src, 256*1024))
	n := 0
	for {
		args, err := dec.ReadCommand()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return n, nil
			}
			return n, fmt.Errorf("backup: restore after %d records: %w", n, err)
		}
		if err := db.Apply(string(args[0]), args[1:]); err != nil {
			return n, err
		}
		n++
	}
}

// Manager keeps timestamped backup generations in a directory. All
// methods are safe for concurrent use: a mutex serialises generation
// numbering and the directory-level operations (create, purge, restore),
// so concurrent Creates cannot race on seq and a Restore cannot read a
// generation Refresh is about to purge.
type Manager struct {
	mu  sync.Mutex
	dir string
	key []byte
	clk clock.Clock
	seq int // disambiguates backups within one clock tick
}

// NewManager creates a manager over dir (created if missing). key, when
// non-nil, encrypts every generation at rest.
func NewManager(dir string, key []byte, clk clock.Clock) (*Manager, error) {
	if clk == nil {
		clk = clock.NewWall()
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("backup: mkdir: %w", err)
	}
	return &Manager{dir: dir, key: key, clk: clk}, nil
}

// Create writes a new backup generation and returns its path.
func (m *Manager) Create(db *store.DB) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.createLocked(db)
}

// createLocked is Create's body; callers hold m.mu.
func (m *Manager) createLocked(db *store.DB) (string, error) {
	m.seq++
	name := fmt.Sprintf("backup-%s-%04d.snap",
		m.clk.Now().UTC().Format("20060102T150405.000000000"), m.seq)
	path := filepath.Join(m.dir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o600)
	if err != nil {
		return "", err
	}
	if err := Write(db, f, m.key); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return path, nil
}

// List returns existing generations, oldest first.
func (m *Manager) List() ([]string, error) {
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "backup-") && strings.HasSuffix(e.Name(), ".snap") {
			out = append(out, filepath.Join(m.dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// RestoreLatest replays the newest generation into db, replacing its
// contents: the keyspace is flushed first so keys written after the backup
// was taken do not survive the restore. A restore that merged into the
// live dataset would resurrect exactly the kind of state Article 17
// erasure is supposed to destroy.
func (m *Manager) RestoreLatest(db *store.DB) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gens, err := m.List()
	if err != nil {
		return 0, err
	}
	if len(gens) == 0 {
		return 0, fmt.Errorf("backup: no generations in %s", m.dir)
	}
	f, err := os.Open(gens[len(gens)-1])
	if err != nil {
		return 0, err
	}
	defer f.Close()
	db.FlushAll()
	return Restore(db, f, m.key)
}

// Refresh implements post-erasure backup hygiene: snapshot the current
// (already-erased) dataset as a new generation and remove every older
// generation, so no backup predating the erasure survives. It returns the
// new generation's path and how many old generations were removed.
func (m *Manager) Refresh(db *store.DB) (string, int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old, err := m.List()
	if err != nil {
		return "", 0, err
	}
	path, err := m.createLocked(db)
	if err != nil {
		return "", 0, err
	}
	removed := 0
	for _, g := range old {
		if g == path {
			continue
		}
		if err := os.Remove(g); err != nil {
			return path, removed, fmt.Errorf("backup: purge %s: %w", g, err)
		}
		removed++
	}
	return path, removed, nil
}

// PruneOlderThan removes generations whose encoded timestamp is before
// cutoff, returning how many were removed — the retention-policy knob for
// backup data itself (storage limitation applies to backups too).
func (m *Manager) PruneOlderThan(cutoff time.Time) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gens, err := m.List()
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, g := range gens {
		ts, ok := parseBackupTime(filepath.Base(g))
		if !ok {
			continue
		}
		if ts.Before(cutoff) {
			if err := os.Remove(g); err != nil {
				return removed, err
			}
			removed++
		}
	}
	return removed, nil
}

func parseBackupTime(name string) (time.Time, bool) {
	name = strings.TrimPrefix(name, "backup-")
	name = strings.TrimSuffix(name, ".snap")
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		name = name[:i]
	}
	ts, err := time.Parse("20060102T150405.000000000", name)
	if err != nil {
		return time.Time{}, false
	}
	return ts, true
}
