package backup

import (
	"bytes"
	"os"
	"sync"
	"testing"
	"time"

	"gdprstore/internal/clock"
	"gdprstore/internal/store"
)

func newDB() (*store.DB, *clock.Virtual) {
	vc := clock.NewVirtual(time.Date(2019, 5, 16, 0, 0, 0, 0, time.UTC))
	return store.New(store.Options{Clock: vc, Seed: 1}), vc
}

func TestWriteRestoreRoundTrip(t *testing.T) {
	src, vc := newDB()
	src.Set("plain", []byte("1"))
	src.SetEX("ttl", []byte("2"), time.Hour)
	var buf bytes.Buffer
	if err := Write(src, &buf, nil); err != nil {
		t.Fatal(err)
	}
	dst := store.New(store.Options{Clock: vc, Seed: 2})
	n, err := Restore(dst, &buf, nil)
	if err != nil || n != 2 {
		t.Fatalf("restored %d, %v", n, err)
	}
	if v, ok := dst.Get("plain"); !ok || string(v) != "1" {
		t.Fatalf("plain = %q, %v", v, ok)
	}
	d, st := dst.TTL("ttl")
	if st != store.TTLSet || d != time.Hour {
		t.Fatalf("ttl = %v, %v", d, st)
	}
}

func TestEncryptedBackupUnreadableWithoutKey(t *testing.T) {
	src, vc := newDB()
	secret := []byte("super-secret-personal-data")
	src.Set("pd", secret)
	key := bytes.Repeat([]byte{9}, 32)
	var buf bytes.Buffer
	if err := Write(src, &buf, key); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), secret) {
		t.Fatal("plaintext visible in encrypted backup")
	}
	// Wrong key fails.
	dst := store.New(store.Options{Clock: vc})
	if _, err := Restore(dst, bytes.NewReader(buf.Bytes()), bytes.Repeat([]byte{8}, 32)); err == nil {
		t.Fatal("wrong key restored successfully")
	}
	// Right key round-trips.
	dst2 := store.New(store.Options{Clock: vc})
	n, err := Restore(dst2, bytes.NewReader(buf.Bytes()), key)
	if err != nil || n != 1 {
		t.Fatalf("restore: %d, %v", n, err)
	}
	if v, _ := dst2.Get("pd"); !bytes.Equal(v, secret) {
		t.Fatalf("restored %q", v)
	}
}

func TestBackupSkipsExpired(t *testing.T) {
	src, vc := newDB()
	src.Set("live", []byte("1"))
	src.SetEX("dead", []byte("2"), time.Second)
	vc.Advance(time.Minute)
	var buf bytes.Buffer
	Write(src, &buf, nil)
	dst := store.New(store.Options{Clock: vc})
	Restore(dst, &buf, nil)
	if dst.Exists("dead") {
		t.Fatal("expired data resurrected through a backup")
	}
	if !dst.Exists("live") {
		t.Fatal("live data missing")
	}
}

func TestManagerGenerations(t *testing.T) {
	db, vc := newDB()
	db.Set("k", []byte("v1"))
	m, err := NewManager(t.TempDir(), nil, vc)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := m.Create(db)
	if err != nil {
		t.Fatal(err)
	}
	vc.Advance(time.Hour)
	db.Set("k", []byte("v2"))
	p2, err := m.Create(db)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("generations collide")
	}
	gens, _ := m.List()
	if len(gens) != 2 || gens[0] != p1 || gens[1] != p2 {
		t.Fatalf("list = %v", gens)
	}
	dst := store.New(store.Options{Clock: vc})
	if _, err := m.RestoreLatest(dst); err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.Get("k"); string(v) != "v2" {
		t.Fatalf("latest restore = %q", v)
	}
}

func TestRestoreLatestEmpty(t *testing.T) {
	m, _ := NewManager(t.TempDir(), nil, nil)
	db, _ := newDB()
	if _, err := m.RestoreLatest(db); err == nil {
		t.Fatal("restore from empty dir accepted")
	}
}

func TestRefreshPurgesErasedData(t *testing.T) {
	// The Article 17 backup property: after erasure + Refresh, no backup
	// generation contains the erased data.
	db, vc := newDB()
	secret := []byte("alice-erased-payload")
	db.Set("pd:alice", secret)
	db.Set("pd:bob", []byte("bob-data"))
	m, err := NewManager(t.TempDir(), nil, vc)
	if err != nil {
		t.Fatal(err)
	}
	m.Create(db)
	vc.Advance(time.Hour)
	m.Create(db)

	db.Del("pd:alice") // the erasure
	_, removed, err := m.Refresh(db)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed %d old generations, want 2", removed)
	}
	gens, _ := m.List()
	if len(gens) != 1 {
		t.Fatalf("generations after refresh = %d", len(gens))
	}
	raw, err := os.ReadFile(gens[0])
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, secret) {
		t.Fatal("erased data persists in the refreshed backup")
	}
	if !bytes.Contains(raw, []byte("bob-data")) {
		t.Fatal("unrelated data lost from backup")
	}
}

func TestPruneOlderThan(t *testing.T) {
	db, vc := newDB()
	db.Set("k", []byte("v"))
	m, _ := NewManager(t.TempDir(), nil, vc)
	m.Create(db)
	vc.Advance(48 * time.Hour)
	m.Create(db)
	cutoff := vc.Now().Add(-24 * time.Hour)
	n, err := m.PruneOlderThan(cutoff)
	if err != nil || n != 1 {
		t.Fatalf("pruned %d, %v", n, err)
	}
	gens, _ := m.List()
	if len(gens) != 1 {
		t.Fatalf("remaining = %d", len(gens))
	}
}

func TestParseBackupTime(t *testing.T) {
	ts, ok := parseBackupTime("backup-20190516T120000.000000000-0001.snap")
	if !ok {
		t.Fatal("failed to parse valid name")
	}
	want := time.Date(2019, 5, 16, 12, 0, 0, 0, time.UTC)
	if !ts.Equal(want) {
		t.Fatalf("ts = %v", ts)
	}
	if _, ok := parseBackupTime("garbage.snap"); ok {
		t.Fatal("parsed garbage")
	}
}

// TestParallelCreateNoCollision is the regression test for the unguarded
// seq counter: concurrent Creates used to race on m.seq (a data race, and
// colliding sequence numbers within one clock tick meant O_EXCL failures
// or silently fewer generations than requested). Run under -race.
func TestParallelCreateNoCollision(t *testing.T) {
	db, vc := newDB()
	db.Set("k", []byte("v"))
	m, err := NewManager(t.TempDir(), nil, vc) // virtual clock: every Create shares one tick
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	paths := make([]string, writers)
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			paths[i], errs[i] = m.Create(db)
		}(i)
	}
	wg.Wait()
	seen := make(map[string]bool)
	for i := 0; i < writers; i++ {
		if errs[i] != nil {
			t.Fatalf("create %d: %v", i, errs[i])
		}
		if seen[paths[i]] {
			t.Fatalf("duplicate generation path %s", paths[i])
		}
		seen[paths[i]] = true
	}
	gens, err := m.List()
	if err != nil || len(gens) != writers {
		t.Fatalf("generations = %d, %v; want %d", len(gens), err, writers)
	}
}

// TestRestoreReplacesLiveState is the regression test for RestoreLatest
// merging into the live keyspace: keys written after the backup was taken
// must not survive the restore. Before the fix, restoring an old backup
// over a database that had since erased a subject resurrected nothing —
// but restoring over a database that had *written* new keys kept them,
// and a restore performed to roll back an unwanted write (the classic
// restore-after-erasure flow) silently merged states.
func TestRestoreReplacesLiveState(t *testing.T) {
	db, vc := newDB()
	m, err := NewManager(t.TempDir(), nil, vc)
	if err != nil {
		t.Fatal(err)
	}
	db.Set("kept", []byte("original"))
	if _, err := m.Create(db); err != nil {
		t.Fatal(err)
	}
	// Post-backup state: a new key appears and the kept key is overwritten.
	db.Set("post-backup", []byte("should-not-survive"))
	db.Set("kept", []byte("clobbered"))

	n, err := m.RestoreLatest(db)
	if err != nil || n != 1 {
		t.Fatalf("restore = %d, %v", n, err)
	}
	if _, ok := db.Get("post-backup"); ok {
		t.Fatal("restore merged: post-backup key survived")
	}
	if v, ok := db.Get("kept"); !ok || string(v) != "original" {
		t.Fatalf("kept = %q, %v; want the backup's value", v, ok)
	}
	if db.Len() != 1 {
		t.Fatalf("restored keyspace has %d keys, want exactly the backup's 1", db.Len())
	}
}
