package backup

import (
	"bytes"
	"os"
	"testing"
	"time"

	"gdprstore/internal/clock"
	"gdprstore/internal/store"
)

func newDB() (*store.DB, *clock.Virtual) {
	vc := clock.NewVirtual(time.Date(2019, 5, 16, 0, 0, 0, 0, time.UTC))
	return store.New(store.Options{Clock: vc, Seed: 1}), vc
}

func TestWriteRestoreRoundTrip(t *testing.T) {
	src, vc := newDB()
	src.Set("plain", []byte("1"))
	src.SetEX("ttl", []byte("2"), time.Hour)
	var buf bytes.Buffer
	if err := Write(src, &buf, nil); err != nil {
		t.Fatal(err)
	}
	dst := store.New(store.Options{Clock: vc, Seed: 2})
	n, err := Restore(dst, &buf, nil)
	if err != nil || n != 2 {
		t.Fatalf("restored %d, %v", n, err)
	}
	if v, ok := dst.Get("plain"); !ok || string(v) != "1" {
		t.Fatalf("plain = %q, %v", v, ok)
	}
	d, st := dst.TTL("ttl")
	if st != store.TTLSet || d != time.Hour {
		t.Fatalf("ttl = %v, %v", d, st)
	}
}

func TestEncryptedBackupUnreadableWithoutKey(t *testing.T) {
	src, vc := newDB()
	secret := []byte("super-secret-personal-data")
	src.Set("pd", secret)
	key := bytes.Repeat([]byte{9}, 32)
	var buf bytes.Buffer
	if err := Write(src, &buf, key); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), secret) {
		t.Fatal("plaintext visible in encrypted backup")
	}
	// Wrong key fails.
	dst := store.New(store.Options{Clock: vc})
	if _, err := Restore(dst, bytes.NewReader(buf.Bytes()), bytes.Repeat([]byte{8}, 32)); err == nil {
		t.Fatal("wrong key restored successfully")
	}
	// Right key round-trips.
	dst2 := store.New(store.Options{Clock: vc})
	n, err := Restore(dst2, bytes.NewReader(buf.Bytes()), key)
	if err != nil || n != 1 {
		t.Fatalf("restore: %d, %v", n, err)
	}
	if v, _ := dst2.Get("pd"); !bytes.Equal(v, secret) {
		t.Fatalf("restored %q", v)
	}
}

func TestBackupSkipsExpired(t *testing.T) {
	src, vc := newDB()
	src.Set("live", []byte("1"))
	src.SetEX("dead", []byte("2"), time.Second)
	vc.Advance(time.Minute)
	var buf bytes.Buffer
	Write(src, &buf, nil)
	dst := store.New(store.Options{Clock: vc})
	Restore(dst, &buf, nil)
	if dst.Exists("dead") {
		t.Fatal("expired data resurrected through a backup")
	}
	if !dst.Exists("live") {
		t.Fatal("live data missing")
	}
}

func TestManagerGenerations(t *testing.T) {
	db, vc := newDB()
	db.Set("k", []byte("v1"))
	m, err := NewManager(t.TempDir(), nil, vc)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := m.Create(db)
	if err != nil {
		t.Fatal(err)
	}
	vc.Advance(time.Hour)
	db.Set("k", []byte("v2"))
	p2, err := m.Create(db)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("generations collide")
	}
	gens, _ := m.List()
	if len(gens) != 2 || gens[0] != p1 || gens[1] != p2 {
		t.Fatalf("list = %v", gens)
	}
	dst := store.New(store.Options{Clock: vc})
	if _, err := m.RestoreLatest(dst); err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.Get("k"); string(v) != "v2" {
		t.Fatalf("latest restore = %q", v)
	}
}

func TestRestoreLatestEmpty(t *testing.T) {
	m, _ := NewManager(t.TempDir(), nil, nil)
	db, _ := newDB()
	if _, err := m.RestoreLatest(db); err == nil {
		t.Fatal("restore from empty dir accepted")
	}
}

func TestRefreshPurgesErasedData(t *testing.T) {
	// The Article 17 backup property: after erasure + Refresh, no backup
	// generation contains the erased data.
	db, vc := newDB()
	secret := []byte("alice-erased-payload")
	db.Set("pd:alice", secret)
	db.Set("pd:bob", []byte("bob-data"))
	m, err := NewManager(t.TempDir(), nil, vc)
	if err != nil {
		t.Fatal(err)
	}
	m.Create(db)
	vc.Advance(time.Hour)
	m.Create(db)

	db.Del("pd:alice") // the erasure
	_, removed, err := m.Refresh(db)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed %d old generations, want 2", removed)
	}
	gens, _ := m.List()
	if len(gens) != 1 {
		t.Fatalf("generations after refresh = %d", len(gens))
	}
	raw, err := os.ReadFile(gens[0])
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, secret) {
		t.Fatal("erased data persists in the refreshed backup")
	}
	if !bytes.Contains(raw, []byte("bob-data")) {
		t.Fatal("unrelated data lost from backup")
	}
}

func TestPruneOlderThan(t *testing.T) {
	db, vc := newDB()
	db.Set("k", []byte("v"))
	m, _ := NewManager(t.TempDir(), nil, vc)
	m.Create(db)
	vc.Advance(48 * time.Hour)
	m.Create(db)
	cutoff := vc.Now().Add(-24 * time.Hour)
	n, err := m.PruneOlderThan(cutoff)
	if err != nil || n != 1 {
		t.Fatalf("pruned %d, %v", n, err)
	}
	gens, _ := m.List()
	if len(gens) != 1 {
		t.Fatalf("remaining = %d", len(gens))
	}
}

func TestParseBackupTime(t *testing.T) {
	ts, ok := parseBackupTime("backup-20190516T120000.000000000-0001.snap")
	if !ok {
		t.Fatal("failed to parse valid name")
	}
	want := time.Date(2019, 5, 16, 12, 0, 0, 0, time.UTC)
	if !ts.Equal(want) {
		t.Fatalf("ts = %v", ts)
	}
	if _, ok := parseBackupTime("garbage.snap"); ok {
		t.Fatal("parsed garbage")
	}
}
