package experiments

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"gdprstore/internal/tlsproxy"
)

// TLSBandwidthRow reports bulk-transfer bandwidth over one path.
type TLSBandwidthRow struct {
	// Path names the topology measured.
	Path string
	// BytesPerSec is the measured streaming bandwidth.
	BytesPerSec float64
}

// TLSBandwidth reproduces the §4.2 observation that interposing the TLS
// proxy pair collapsed the available bandwidth (44 Gbps → 4.9 Gbps on the
// authors' testbed, a ~9× reduction). It streams totalBytes through (a)
// a direct TCP connection and (b) the stunnel-style tunnel, on loopback,
// and reports both bandwidths. Absolute numbers depend on the host; the
// paper's shape is the large relative drop.
func TLSBandwidth(totalBytes int64) ([]TLSBandwidthRow, error) {
	if totalBytes <= 0 {
		totalBytes = 64 << 20 // 64 MiB
	}

	sink, err := newByteSink()
	if err != nil {
		return nil, err
	}
	defer sink.Close()

	direct, err := measureStream(sink.Addr(), totalBytes)
	if err != nil {
		return nil, fmt.Errorf("direct: %w", err)
	}

	tun, err := tlsproxy.NewTunnel(sink.Addr(), tlsproxy.Throttle{})
	if err != nil {
		return nil, err
	}
	defer tun.Close()
	tunneled, err := measureStream(tun.Addr(), totalBytes)
	if err != nil {
		return nil, fmt.Errorf("tunneled: %w", err)
	}

	return []TLSBandwidthRow{
		{Path: "direct TCP", BytesPerSec: direct},
		{Path: "TLS tunnel (stunnel stand-in)", BytesPerSec: tunneled},
	}, nil
}

// byteSink is a TCP server that discards everything it receives.
type byteSink struct {
	ln net.Listener
	wg sync.WaitGroup
}

func newByteSink() (*byteSink, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &byteSink{ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func(c net.Conn) {
				defer s.wg.Done()
				defer c.Close()
				io.Copy(io.Discard, c)
			}(c)
		}
	}()
	return s, nil
}

func (s *byteSink) Addr() string { return s.ln.Addr().String() }

func (s *byteSink) Close() {
	s.ln.Close()
	s.wg.Wait()
}

func measureStream(addr string, total int64) (float64, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	buf := make([]byte, 256*1024)
	var sent int64
	start := time.Now()
	for sent < total {
		n := int64(len(buf))
		if total-sent < n {
			n = total - sent
		}
		wn, err := c.Write(buf[:n])
		sent += int64(wn)
		if err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, errors.New("transfer too fast to measure")
	}
	return float64(sent) / elapsed, nil
}

// FormatTLSBandwidth renders the bandwidth comparison.
func FormatTLSBandwidth(rows []TLSBandwidthRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %16s\n", "Path", "Bandwidth")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-32s %11.1f MB/s\n", r.Path, r.BytesPerSec/1e6)
	}
	if len(rows) == 2 && rows[1].BytesPerSec > 0 {
		fmt.Fprintf(&b, "reduction: %.1fx (paper: 44 Gbps -> 4.9 Gbps, ~9x)\n",
			rows[0].BytesPerSec/rows[1].BytesPerSec)
	}
	return b.String()
}
