package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestFigure2Shape asserts the load-bearing claims of Figure 2 at reduced
// scale: (1) the lazy probabilistic erasure delay grows with datastore
// size, (2) it is wildly disproportionate to the work (minutes-hours of
// simulated lag), and (3) the paper's fast active expiry erases everything
// in sub-second wall time.
func TestFigure2Shape(t *testing.T) {
	rows, err := Figure2(Figure2Config{Sizes: []int{1000, 4000, 16000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].LazyEraseDelay <= rows[i-1].LazyEraseDelay {
			t.Errorf("lazy delay not growing: %d keys → %v, %d keys → %v",
				rows[i-1].TotalKeys, rows[i-1].LazyEraseDelay,
				rows[i].TotalKeys, rows[i].LazyEraseDelay)
		}
	}
	// At 16k keys the paper reports ~18 minutes; our simulation must land
	// in the same order of magnitude (minutes, not seconds).
	if rows[2].LazyEraseDelay < time.Minute {
		t.Errorf("lazy delay at 16k = %v, want minutes of simulated lag", rows[2].LazyEraseDelay)
	}
	for _, r := range rows {
		if r.FastEraseWall > time.Second {
			t.Errorf("fast scan at %d keys took %v, want sub-second", r.TotalKeys, r.FastEraseWall)
		}
		if r.HeapEraseWall > time.Second {
			t.Errorf("heap at %d keys took %v, want sub-second", r.TotalKeys, r.HeapEraseWall)
		}
		if r.ExpiredKeys != r.TotalKeys/5 {
			t.Errorf("expired fraction at %d = %d, want 20%%", r.TotalKeys, r.ExpiredKeys)
		}
	}
	out := FormatFigure2(rows)
	if !strings.Contains(out, "TotalKeys") {
		t.Fatal("format output broken")
	}
}

func TestFigure2PaperScalePoint(t *testing.T) {
	if testing.Short() {
		t.Skip("full 128k point takes a few seconds")
	}
	rows, err := Figure2(Figure2Config{Sizes: []int{128000}})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// Paper: 10,728 s (~3 h). The exact value depends on RNG; assert the
	// order of magnitude: above 30 minutes of simulated time.
	if r.LazyEraseDelay < 30*time.Minute {
		t.Errorf("128k lazy delay = %v, want hours-scale lag", r.LazyEraseDelay)
	}
	if !raceEnabled && r.FastEraseWall > time.Second {
		t.Errorf("128k fast scan = %v, want sub-second", r.FastEraseWall)
	}
}

func TestFastExpirySweepSubSecondAtMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-key population is slow")
	}
	if raceEnabled {
		t.Skip("race detector slowdown invalidates the wall-clock bound")
	}
	out, err := FastExpirySweep([]int{1_000_000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := out[1_000_000]; d > time.Second {
		t.Errorf("1M-key fast expiry took %v, paper claims sub-second", d)
	}
}

func TestFsyncSpectrumShape(t *testing.T) {
	rows, err := FsyncSpectrum(t.TempDir(), 500, 3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	off, everysec, always := rows[0].Throughput, rows[1].Throughput, rows[2].Throughput
	// §4.1's shape: always << everysec <= off.
	if !(always < everysec && everysec <= off*1.05) {
		t.Errorf("fsync ordering broken: off=%.0f everysec=%.0f always=%.0f", off, everysec, always)
	}
	// The paper reports ~6x between everysec and always; environments
	// vary, but always must be at least 2x slower.
	if everysec/always < 2 {
		t.Errorf("everysec/always = %.1fx, want >= 2x (paper: ~6x)", everysec/always)
	}
	out := FormatFsync(rows)
	if !strings.Contains(out, "speedup") {
		t.Fatal("format output broken")
	}
}

func TestFigure1SmallRun(t *testing.T) {
	rows, err := Figure1(Figure1Config{
		RecordCount: 300, OperationCount: 1500, Workers: 2, ValueSize: 256,
		Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Figure1Workloads) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, setup := range Figure1Setups {
			if r.Throughput[setup] <= 0 {
				t.Errorf("workload %s setup %q throughput missing", r.Workload, setup)
			}
		}
		// The GDPR configurations must not beat the unmodified store by
		// more than noise. At this scale (1500 ops) a single workload's
		// throughput can swing several-fold when the suite runs in
		// parallel on a loaded box, so the per-workload guard only
		// catches outright inversions; the aggregate assert below is the
		// real shape check.
		base := r.Throughput["Unmodified"]
		if r.Throughput["AOF w/ sync"] > base*3 {
			t.Errorf("workload %s: AOF-sync faster than baseline (%.0f vs %.0f)",
				r.Workload, r.Throughput["AOF w/ sync"], base)
		}
	}
	// Across the read-heavy workloads, synchronous logging must show a
	// substantial hit (paper: drops to ~5%; assert < 70% to be robust to
	// fast disks).
	var baseSum, syncSum float64
	for _, r := range rows {
		baseSum += r.Throughput["Unmodified"]
		syncSum += r.Throughput["AOF w/ sync"]
	}
	if syncSum > 0.7*baseSum {
		t.Errorf("AOF-sync aggregate %.0f vs baseline %.0f: logging cost invisible", syncSum, baseSum)
	}
	out := FormatFigure1(rows)
	if !strings.Contains(out, "Load-A") {
		t.Fatal("format output broken")
	}
}

func TestComplianceSpectrumShape(t *testing.T) {
	rows, err := ComplianceSpectrum(t.TempDir(), 400, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	base := rows[0].Throughput
	strict := rows[len(rows)-1] // real-time + full
	if strict.Timing != "real-time" || strict.Capability != "full" {
		t.Fatalf("row order changed: %+v", strict)
	}
	if strict.Throughput >= base {
		t.Errorf("strict compliance (%.0f) not slower than baseline (%.0f)", strict.Throughput, base)
	}
	// Strict must be the slowest compliant corner (allowing 10% noise).
	for _, r := range rows[1 : len(rows)-1] {
		if strict.Throughput > r.Throughput*1.1 {
			t.Errorf("strict (%.0f) faster than %s/%s (%.0f)",
				strict.Throughput, r.Timing, r.Capability, r.Throughput)
		}
	}
	out := FormatSpectrum(rows)
	if !strings.Contains(out, "real-time") {
		t.Fatal("format output broken")
	}
}

func TestTLSBandwidthShape(t *testing.T) {
	rows, err := TLSBandwidth(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	direct, tunneled := rows[0].BytesPerSec, rows[1].BytesPerSec
	if direct <= 0 || tunneled <= 0 {
		t.Fatalf("bandwidths: %v", rows)
	}
	// The tunnel adds two proxy hops and TLS; it must not be faster than
	// direct (paper: ~9x slower).
	if tunneled > direct {
		t.Errorf("tunnel (%.0f MB/s) faster than direct (%.0f MB/s)", tunneled/1e6, direct/1e6)
	}
	out := FormatTLSBandwidth(rows)
	if !strings.Contains(out, "reduction") {
		t.Fatal("format output broken")
	}
}

func TestErasureLatencyShape(t *testing.T) {
	rows, err := ErasureLatency(t.TempDir(), 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Rows: eventual/no, eventual/fleet, realtime/no, realtime/fleet.
	evNo, rtNo := rows[0], rows[2]
	if evNo.Timing != "eventual" || rtNo.Timing != "real-time" {
		t.Fatalf("row order changed: %+v", rows)
	}
	// Real-time Forget pays synchronous compaction: it must be at least
	// 10x slower at the median than eventual Forget.
	if rtNo.ForgetLatency.P50 < 10*evNo.ForgetLatency.P50 {
		t.Errorf("real-time Forget p50 %v not >> eventual %v",
			rtNo.ForgetLatency.P50, evNo.ForgetLatency.P50)
	}
	out := FormatErasure(rows)
	if !strings.Contains(out, "real-time") {
		t.Fatal("format output broken")
	}
}
