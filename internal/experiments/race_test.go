//go:build race

package experiments

// raceEnabled reports whether this test binary was built with the race
// detector, whose 5–20× slowdown invalidates the wall-clock assertions of
// the paper-scale experiments (the CI `race` job runs the whole module).
const raceEnabled = true
