package experiments

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/backup"
	"gdprstore/internal/core"
	"gdprstore/internal/metrics"
	"gdprstore/internal/replica"
)

// ErasureRow is one configuration's Article 17 cost profile.
type ErasureRow struct {
	// Timing is the compliance timing mode.
	Timing string
	// WithFleet marks whether replicas and backups were attached.
	WithFleet bool
	// ForgetLatency summarises the latency of the Forget call itself.
	ForgetLatency metrics.Snapshot
	// MaintainLatency is the deferred-work cost (eventual mode pays the
	// AOF compaction and backup refresh here instead).
	MaintainLatency time.Duration
}

// ErasureLatency quantifies what §4.3 and §3.2 together imply but the
// paper does not measure: the latency cost of the right to be forgotten
// under real-time vs eventual timing, with and without the fleet
// (replicas + backups) attached. Real-time Forget pays AOF compaction,
// replica flush and backup refresh synchronously; eventual Forget returns
// after the index/engine erasure and defers the rest to Maintain.
func ErasureLatency(dir string, subjects, recordsPerSubject int) ([]ErasureRow, error) {
	if subjects <= 0 {
		subjects = 50
	}
	if recordsPerSubject <= 0 {
		recordsPerSubject = 10
	}
	var rows []ErasureRow
	for _, timing := range []core.Timing{core.TimingEventual, core.TimingRealTime} {
		for _, fleet := range []bool{false, true} {
			row, err := erasurePoint(dir, timing, fleet, subjects, recordsPerSubject)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func erasurePoint(dir string, timing core.Timing, fleet bool, subjects, records int) (ErasureRow, error) {
	sub := fmt.Sprintf("erasure-%s-%v", timing, fleet)
	cfg := core.Config{
		Compliant:    true,
		Timing:       timing,
		Capability:   core.CapabilityFull,
		AuditEnabled: true,
		AOFPath:      filepath.Join(dir, sub+".aof"),
		DefaultTTL:   24 * time.Hour,
	}
	st, err := core.Open(cfg)
	if err != nil {
		return ErasureRow{}, err
	}
	defer st.Close()
	st.ACL().AddPrincipal(acl.Principal{ID: "ctl", Role: acl.RoleController})
	ctx := core.Ctx{Actor: "ctl", Purpose: "account"}

	if fleet {
		if _, err := st.EnableReplication(replica.Sync); err != nil {
			return ErasureRow{}, err
		}
		if _, err := st.AddReplica(); err != nil {
			return ErasureRow{}, err
		}
		if _, err := st.AddReplica(); err != nil {
			return ErasureRow{}, err
		}
		m, err := backup.NewManager(filepath.Join(dir, sub+"-backups"), nil, nil)
		if err != nil {
			return ErasureRow{}, err
		}
		st.SetBackupManager(m)
	}

	val := make([]byte, 256)
	for i := 0; i < subjects; i++ {
		owner := fmt.Sprintf("subj%04d", i)
		st.ACL().AddPrincipal(acl.Principal{ID: owner, Role: acl.RoleSubject})
		for j := 0; j < records; j++ {
			key := fmt.Sprintf("pd:%s:%03d", owner, j)
			if err := st.Put(ctx, key, val, core.PutOptions{Owner: owner, Purposes: []string{"account"}}); err != nil {
				return ErasureRow{}, err
			}
		}
	}
	if fleet {
		if _, err := st.Backup(); err != nil {
			return ErasureRow{}, err
		}
	}

	hist := metrics.NewHistogram()
	for i := 0; i < subjects; i++ {
		owner := fmt.Sprintf("subj%04d", i)
		t0 := time.Now()
		n, err := st.Forget(core.Ctx{Actor: owner}, owner)
		if err != nil {
			return ErasureRow{}, fmt.Errorf("forget %s: %w", owner, err)
		}
		if n != records {
			return ErasureRow{}, fmt.Errorf("forget %s erased %d, want %d", owner, n, records)
		}
		hist.Record(time.Since(t0))
	}

	t0 := time.Now()
	st.Maintain()
	maint := time.Since(t0)

	return ErasureRow{
		Timing:          timing.String(),
		WithFleet:       fleet,
		ForgetLatency:   hist.Snapshot(),
		MaintainLatency: maint,
	}, nil
}

// FormatErasure renders the erasure-latency table.
func FormatErasure(rows []ErasureRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s %12s %12s %12s %14s\n",
		"Timing", "Fleet", "Forget p50", "Forget p99", "Forget max", "Maintain")
	for _, r := range rows {
		fleet := "no"
		if r.WithFleet {
			fleet = "yes"
		}
		fmt.Fprintf(&b, "%-10s %-6s %12v %12v %12v %14v\n",
			r.Timing, fleet,
			r.ForgetLatency.P50.Round(time.Microsecond),
			r.ForgetLatency.P99.Round(time.Microsecond),
			r.ForgetLatency.Max.Round(time.Microsecond),
			r.MaintainLatency.Round(time.Microsecond))
	}
	b.WriteString("real-time pays compaction + replica flush + backup refresh inside Forget;\n")
	b.WriteString("eventual defers that work to Maintain, keeping Forget latency flat.\n")
	return b.String()
}
