package experiments

import (
	"fmt"
	"strings"
	"time"

	"gdprstore/internal/clock"
	"gdprstore/internal/store"
)

// Figure2Config parameterises the erasure-delay experiment of §4.3.
type Figure2Config struct {
	// Sizes are the total key counts (the paper sweeps 1k..128k).
	Sizes []int
	// ShortFraction of keys expires at ShortTTL (paper: 20% at 5 min);
	// the rest at LongTTL (paper: 5 days).
	ShortFraction float64
	ShortTTL      time.Duration
	LongTTL       time.Duration
	// Seed fixes the engine's sampling RNG.
	Seed int64
	// MaxCycles caps the simulation as a safety net.
	MaxCycles int
}

func (c *Figure2Config) defaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{1000, 2000, 4000, 8000, 16000, 32000, 64000, 128000}
	}
	if c.ShortFraction == 0 {
		c.ShortFraction = 0.2
	}
	if c.ShortTTL == 0 {
		c.ShortTTL = 5 * time.Minute
	}
	if c.LongTTL == 0 {
		c.LongTTL = 5 * 24 * time.Hour
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 50_000_000
	}
}

// Figure2Row is one x position of Figure 2.
type Figure2Row struct {
	// TotalKeys is the datastore size.
	TotalKeys int
	// ExpiredKeys is how many keys were due (≈20% of total).
	ExpiredKeys int
	// LazyEraseDelay is the simulated time Redis's probabilistic cycle
	// took to erase every expired key past its TTL (the paper's red
	// annotations: 41 s at 1k up to 10,728 s at 128k).
	LazyEraseDelay time.Duration
	// LazyCycles is the number of 100 ms cycles that took.
	LazyCycles int
	// FastEraseWall is the measured wall-clock time of the paper's
	// modified full-scan erasure (expected sub-second at every size).
	FastEraseWall time.Duration
	// HeapEraseWall is our expiry-heap extension's wall-clock time.
	HeapEraseWall time.Duration
}

// Figure2 reproduces Figure 2: how long expired keys linger under Redis's
// lazy probabilistic expiry versus the paper's fast active expiry. The
// probabilistic cycle runs against a virtual clock — its erasure delay is
// cycle-count × 100 ms, a deterministic function of the sampling process,
// so simulated time reproduces the paper's hours-long delays in
// milliseconds of wall time. The fast-scan and heap strategies are
// measured in real wall time since their claim ("sub-second") is about
// actual work done.
func Figure2(cfg Figure2Config) ([]Figure2Row, error) {
	cfg.defaults()
	rows := make([]Figure2Row, 0, len(cfg.Sizes))
	for _, n := range cfg.Sizes {
		row, err := figure2Point(n, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func figure2Point(n int, cfg Figure2Config) (Figure2Row, error) {
	row := Figure2Row{TotalKeys: n}

	// --- lazy probabilistic (unmodified Redis), simulated time ---
	{
		vc := clock.NewVirtual(time.Unix(0, 0))
		db := store.New(store.Options{Clock: vc, Seed: cfg.Seed, Strategy: store.ExpiryLazyProbabilistic})
		row.ExpiredKeys = populateFig2(db, n, cfg)
		vc.Advance(cfg.ShortTTL) // all short-term keys are now due
		exp := store.NewExpirer(db)
		cycles := 0
		// ExpiredCount is O(1); every due key can only be reclaimed by the
		// cycle itself here (no client accesses), so the run is complete
		// when the counter reaches the due population.
		due := uint64(row.ExpiredKeys)
		for db.ExpiredCount() < due {
			exp.Step()
			cycles++
			if cycles > cfg.MaxCycles {
				return row, fmt.Errorf("experiments: fig2 n=%d exceeded %d cycles", n, cfg.MaxCycles)
			}
		}
		row.LazyCycles = cycles
		row.LazyEraseDelay = time.Duration(cycles) * store.ActiveExpireCyclePeriod
	}

	// --- fast scan (the paper's modification), wall time ---
	{
		vc := clock.NewVirtual(time.Unix(0, 0))
		db := store.New(store.Options{Clock: vc, Seed: cfg.Seed, Strategy: store.ExpiryFastScan})
		populateFig2(db, n, cfg)
		vc.Advance(cfg.ShortTTL)
		t0 := time.Now()
		st := db.ActiveExpireCycle()
		row.FastEraseWall = time.Since(t0)
		if left := db.ExpiredUnreclaimed(); left != 0 {
			return row, fmt.Errorf("experiments: fast scan left %d expired keys at n=%d", left, n)
		}
		_ = st
	}

	// --- expiry heap (our ablation), wall time ---
	{
		vc := clock.NewVirtual(time.Unix(0, 0))
		db := store.New(store.Options{Clock: vc, Seed: cfg.Seed, Strategy: store.ExpiryHeap})
		populateFig2(db, n, cfg)
		vc.Advance(cfg.ShortTTL)
		t0 := time.Now()
		db.ActiveExpireCycle()
		row.HeapEraseWall = time.Since(t0)
		if left := db.ExpiredUnreclaimed(); left != 0 {
			return row, fmt.Errorf("experiments: heap left %d expired keys at n=%d", left, n)
		}
	}
	return row, nil
}

func populateFig2(db *store.DB, n int, cfg Figure2Config) (short int) {
	mod := int(1 / cfg.ShortFraction) // 20% → every 5th key
	if mod < 1 {
		mod = 1
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("user%08d", i)
		if i%mod == 0 {
			db.SetEX(key, []byte("payload"), cfg.ShortTTL)
			short++
		} else {
			db.SetEX(key, []byte("payload"), cfg.LongTTL)
		}
	}
	return short
}

// FormatFigure2 renders rows next to the paper's reported numbers.
func FormatFigure2(rows []Figure2Row) string {
	// The paper's measured delays (seconds) for 1k..128k.
	paper := map[int]int{
		1000: 41, 2000: 94, 4000: 256, 8000: 511,
		16000: 1090, 32000: 2228, 64000: 4830, 128000: 10728,
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-9s %-16s %-12s %-12s %-12s %s\n",
		"TotalKeys", "Expired", "Lazydelay(sim)", "LazyCycles", "FastScan", "ExpiryHeap", "Paper(s)")
	for _, r := range rows {
		paperStr := "-"
		if s, ok := paper[r.TotalKeys]; ok {
			paperStr = fmt.Sprintf("%d", s)
		}
		fmt.Fprintf(&b, "%-10d %-9d %-16s %-12d %-12s %-12s %s\n",
			r.TotalKeys, r.ExpiredKeys,
			r.LazyEraseDelay.Round(100*time.Millisecond),
			r.LazyCycles,
			r.FastEraseWall.Round(time.Microsecond),
			r.HeapEraseWall.Round(time.Microsecond),
			paperStr)
	}
	return b.String()
}

// FastExpirySweep verifies the paper's §4.3 claim that the modified
// (fast-scan) expiry erases all expired keys with sub-second latency for
// datastores of up to maxKeys (paper: 1M) keys. It returns the wall time
// per size.
func FastExpirySweep(sizes []int, seed int64) (map[int]time.Duration, error) {
	if len(sizes) == 0 {
		sizes = []int{100_000, 250_000, 500_000, 1_000_000}
	}
	cfg := Figure2Config{Seed: seed}
	cfg.defaults()
	out := make(map[int]time.Duration, len(sizes))
	for _, n := range sizes {
		vc := clock.NewVirtual(time.Unix(0, 0))
		db := store.New(store.Options{Clock: vc, Seed: cfg.Seed, Strategy: store.ExpiryFastScan})
		populateFig2(db, n, cfg)
		vc.Advance(cfg.ShortTTL)
		t0 := time.Now()
		db.ActiveExpireCycle()
		took := time.Since(t0)
		if left := db.ExpiredUnreclaimed(); left != 0 {
			return nil, fmt.Errorf("experiments: sweep left %d expired at n=%d", left, n)
		}
		out[n] = took
	}
	return out, nil
}
