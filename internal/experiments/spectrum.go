package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/aof"
	"gdprstore/internal/core"
	"gdprstore/internal/ycsb"
)

// FsyncRow is one point of the §4.1 fsync spectrum: how throughput changes
// with the durability of monitoring.
type FsyncRow struct {
	// Mode is the logging configuration.
	Mode string
	// Throughput is YCSB-A op/s.
	Throughput float64
	// RelativeToOff is Throughput / no-logging Throughput.
	RelativeToOff float64
}

// FsyncSpectrum reproduces §4.1's finding: synchronous per-op logging
// drops throughput to ~5% of baseline, while batching the log once per
// second recovers 6× (to ~30%). It runs YCSB workload A embedded (the
// logging cost, not the network, is under test) against three AOF modes:
// no logging, fsync every second, fsync always — all with reads journaled.
func FsyncSpectrum(dir string, recordCount, opCount int64, workers int) ([]FsyncRow, error) {
	if dir == "" {
		d, err := os.MkdirTemp("", "gdpr-fsync")
		if err != nil {
			return nil, err
		}
		dir = d
	}
	if recordCount <= 0 {
		recordCount = 2000
	}
	if opCount <= 0 {
		opCount = 10000
	}
	if workers <= 0 {
		workers = 4
	}

	modes := []struct {
		name string
		cfg  func() core.Config
	}{
		{"no logging", func() core.Config { return core.Baseline() }},
		{"AOF everysec (eventual)", func() core.Config {
			c := core.Baseline()
			c.AOFPath = filepath.Join(dir, "everysec.aof")
			c.AOFSync = core.Ptr(aof.SyncEverySec)
			c.JournalReads = true
			return c
		}},
		{"AOF sync-every-op (real-time)", func() core.Config {
			c := core.Baseline()
			c.AOFPath = filepath.Join(dir, "always.aof")
			c.AOFSync = core.Ptr(aof.SyncAlways)
			c.JournalReads = true
			return c
		}},
	}

	rows := make([]FsyncRow, 0, len(modes))
	for _, m := range modes {
		st, err := core.Open(m.cfg())
		if err != nil {
			return nil, err
		}
		factory := func(int) (ycsb.DB, error) { return ycsb.NewEmbeddedDB(st), nil }
		if _, err := ycsb.Load(ycsb.Config{
			Workload: ycsb.WorkloadA, RecordCount: recordCount, Workers: workers, Factory: factory,
		}); err != nil {
			st.Close()
			return nil, err
		}
		res, err := ycsb.Run(ycsb.Config{
			Workload: ycsb.WorkloadA, RecordCount: recordCount,
			OperationCount: opCount, Workers: workers, Factory: factory,
		})
		st.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, FsyncRow{Mode: m.name, Throughput: res.Throughput})
	}
	base := rows[0].Throughput
	for i := range rows {
		rows[i].RelativeToOff = rows[i].Throughput / base
	}
	return rows, nil
}

// FormatFsync renders the fsync spectrum table.
func FormatFsync(rows []FsyncRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %14s %10s\n", "Logging mode", "Throughput", "vs off")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-32s %9.0f op/s %9.1f%%\n", r.Mode, r.Throughput, 100*r.RelativeToOff)
	}
	if len(rows) == 3 && rows[2].Throughput > 0 {
		fmt.Fprintf(&b, "everysec / always speedup: %.1fx (paper: ~6x)\n",
			rows[1].Throughput/rows[2].Throughput)
	}
	return b.String()
}

// SpectrumRow is one corner of the §3.2 compliance spectrum.
type SpectrumRow struct {
	Timing     string
	Capability string
	Throughput float64
	// RelativeToBaseline compares against the non-compliant store.
	RelativeToBaseline float64
}

// ComplianceSpectrum measures YCSB-A throughput across the four corners of
// the compliance spectrum (real-time/eventual × full/partial), plus the
// non-compliant baseline, with auditing to disk in every compliant corner.
// It demonstrates §3.2's claim that compliance is a continuum with strict
// compliance the most expensive corner.
func ComplianceSpectrum(dir string, recordCount, opCount int64, workers int) ([]SpectrumRow, error) {
	if dir == "" {
		d, err := os.MkdirTemp("", "gdpr-spectrum")
		if err != nil {
			return nil, err
		}
		dir = d
	}
	if recordCount <= 0 {
		recordCount = 1000
	}
	if opCount <= 0 {
		opCount = 5000
	}
	if workers <= 0 {
		workers = 4
	}

	type corner struct {
		timing     core.Timing
		capability core.Capability
	}
	corners := []corner{
		{core.TimingEventual, core.CapabilityPartial},
		{core.TimingEventual, core.CapabilityFull},
		{core.TimingRealTime, core.CapabilityPartial},
		{core.TimingRealTime, core.CapabilityFull},
	}

	var rows []SpectrumRow

	// Baseline first.
	baseThr, err := spectrumRun(core.Baseline(), core.Ctx{}, core.PutOptions{}, recordCount, opCount, workers)
	if err != nil {
		return nil, err
	}
	rows = append(rows, SpectrumRow{Timing: "none", Capability: "baseline", Throughput: baseThr})

	for i, c := range corners {
		cfg := core.Config{
			Compliant:    true,
			Timing:       c.timing,
			Capability:   c.capability,
			AuditEnabled: true,
			AuditPath:    filepath.Join(dir, fmt.Sprintf("audit-%d.log", i)),
			DefaultTTL:   24 * time.Hour,
		}
		// Partial capability on its own disables read auditing; keep the
		// corners comparable on the features they do share.
		ctx := core.Ctx{Actor: "bench", Purpose: "benchmark"}
		opts := core.PutOptions{Owner: "subject", Purposes: []string{"benchmark"}}
		thr, err := spectrumCompliantRun(cfg, ctx, opts, recordCount, opCount, workers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SpectrumRow{
			Timing:     c.timing.String(),
			Capability: c.capability.String(),
			Throughput: thr,
		})
	}
	for i := range rows {
		rows[i].RelativeToBaseline = rows[i].Throughput / baseThr
	}
	return rows, nil
}

func spectrumRun(cfg core.Config, ctx core.Ctx, opts core.PutOptions, recordCount, opCount int64, workers int) (float64, error) {
	st, err := core.Open(cfg)
	if err != nil {
		return 0, err
	}
	defer st.Close()
	factory := func(int) (ycsb.DB, error) { return ycsb.NewEmbeddedDB(st), nil }
	if _, err := ycsb.Load(ycsb.Config{Workload: ycsb.WorkloadA, RecordCount: recordCount, Workers: workers, Factory: factory}); err != nil {
		return 0, err
	}
	res, err := ycsb.Run(ycsb.Config{Workload: ycsb.WorkloadA, RecordCount: recordCount, OperationCount: opCount, Workers: workers, Factory: factory})
	if err != nil {
		return 0, err
	}
	return res.Throughput, nil
}

func spectrumCompliantRun(cfg core.Config, ctx core.Ctx, opts core.PutOptions, recordCount, opCount int64, workers int) (float64, error) {
	st, err := core.Open(cfg)
	if err != nil {
		return 0, err
	}
	defer st.Close()
	st.ACL().AddPrincipal(acl.Principal{ID: "bench", Role: acl.RoleController})
	factory := func(int) (ycsb.DB, error) { return ycsb.NewGDPRDB(st, ctx, opts), nil }
	if _, err := ycsb.Load(ycsb.Config{Workload: ycsb.WorkloadA, RecordCount: recordCount, Workers: workers, Factory: factory}); err != nil {
		return 0, err
	}
	res, err := ycsb.Run(ycsb.Config{Workload: ycsb.WorkloadA, RecordCount: recordCount, OperationCount: opCount, Workers: workers, Factory: factory})
	if err != nil {
		return 0, err
	}
	if res.Errors > 0 {
		return 0, fmt.Errorf("experiments: spectrum corner %s/%s had %d errors",
			cfg.Timing, cfg.Capability, res.Errors)
	}
	return res.Throughput, nil
}

// FormatSpectrum renders the compliance-spectrum table.
func FormatSpectrum(rows []SpectrumRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-10s %14s %10s\n", "Timing", "Capability", "Throughput", "vs base")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-10s %9.0f op/s %9.1f%%\n",
			r.Timing, r.Capability, r.Throughput, 100*r.RelativeToBaseline)
	}
	return b.String()
}
