// Package experiments contains the reproduction harness: one function per
// table/figure of the paper, shared between cmd/experiments and the
// top-level benchmarks. Each function returns structured rows so callers
// can print paper-shaped output or assert on shapes in tests.
package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gdprstore/internal/aof"
	"gdprstore/internal/core"
	"gdprstore/internal/server"
	"gdprstore/internal/tlsproxy"
	"gdprstore/internal/ycsb"
	"gdprstore/pkg/gdprkv"
)

// Figure1Config selects Figure 1's benchmark scale. The paper uses 2M
// operations on a Xeon testbed; defaults here are sized for CI but the
// cmd/experiments binary exposes flags to run paper scale.
type Figure1Config struct {
	// RecordCount is the loaded dataset size (YCSB recordcount).
	RecordCount int64
	// OperationCount per workload run phase.
	OperationCount int64
	// Workers is the client parallelism.
	Workers int
	// ValueSize is bytes per record.
	ValueSize int
	// Dir holds AOF files; empty uses a temp dir.
	Dir string
	// ThrottleBytesPerSec throttles the TLS tunnel to model the paper's
	// 44→4.9 Gbps proxy bandwidth collapse; 0 leaves it unthrottled.
	ThrottleBytesPerSec int64
	// PoolSize > 0 shares one pooled pkg/gdprkv client of that many
	// connections across all workers instead of the classic one
	// connection per worker.
	PoolSize int
}

func (c *Figure1Config) defaults() error {
	if c.RecordCount <= 0 {
		c.RecordCount = 2000
	}
	if c.OperationCount <= 0 {
		c.OperationCount = 10000
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 1000
	}
	if c.Dir == "" {
		dir, err := os.MkdirTemp("", "gdpr-fig1")
		if err != nil {
			return err
		}
		c.Dir = dir
	}
	return nil
}

// Figure1Setups are the three bar groups of Figure 1.
var Figure1Setups = []string{"Unmodified", "AOF w/ sync", "LUKS + TLS"}

// Figure1Row is one x-axis position of Figure 1: a workload phase with the
// throughput of each setup.
type Figure1Row struct {
	// Workload is the x label: Load-A, A, B, C, D, Load-E, E, F.
	Workload string
	// Throughput maps setup name → op/s.
	Throughput map[string]float64
}

// Figure1Workloads is the x axis of Figure 1, in paper order.
var Figure1Workloads = []string{"Load-A", "A", "B", "C", "D", "Load-E", "E", "F"}

// Figure1 reproduces Figure 1: YCSB throughput across workloads for the
// unmodified store, the store with synchronous read-inclusive AOF logging
// (§4.1), and the store behind LUKS-style at-rest encryption plus a
// stunnel-style TLS tunnel (§4.2). All three setups are exercised over the
// network path, as the paper's deployment was.
func Figure1(cfg Figure1Config) ([]Figure1Row, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rows := make([]Figure1Row, len(Figure1Workloads))
	for i, w := range Figure1Workloads {
		rows[i] = Figure1Row{Workload: w, Throughput: make(map[string]float64)}
	}

	for _, setup := range Figure1Setups {
		env, err := newFig1Env(setup, cfg)
		if err != nil {
			return nil, err
		}
		if err := runFig1Workloads(env, cfg, rows, setup); err != nil {
			env.Close()
			return nil, err
		}
		env.Close()
	}
	return rows, nil
}

// fig1Env is one running setup: a store, its server, and the address
// clients should dial (directly or through the tunnel).
type fig1Env struct {
	store  *core.Store
	server *server.Server
	tunnel *tlsproxy.Tunnel
	addr   string
}

func (e *fig1Env) Close() {
	if e.tunnel != nil {
		e.tunnel.Close()
	}
	if e.server != nil {
		e.server.Close()
	}
	if e.store != nil {
		e.store.Close()
	}
}

func newFig1Env(setup string, cfg Figure1Config) (*fig1Env, error) {
	var storeCfg core.Config
	var tunneled bool
	switch setup {
	case "Unmodified":
		storeCfg = core.Baseline()
	case "AOF w/ sync":
		// The paper's §4.1 retrofit: AOF extended to record reads, fsynced
		// on every operation. No other GDPR machinery is enabled, isolating
		// the monitoring cost.
		storeCfg = core.Baseline()
		storeCfg.AOFPath = filepath.Join(cfg.Dir, "aof-sync.aof")
		storeCfg.AOFSync = core.Ptr(aof.SyncAlways)
		storeCfg.JournalReads = true
	case "LUKS + TLS":
		// §4.2: unmodified store whose persistence passes through the
		// block cipher (LUKS stand-in) and whose traffic passes through the
		// TLS tunnel pair (stunnel stand-in).
		storeCfg = core.Baseline()
		storeCfg.AOFPath = filepath.Join(cfg.Dir, "aof-luks.aof")
		storeCfg.AOFSync = core.Ptr(aof.SyncEverySec)
		key := make([]byte, 32)
		for i := range key {
			key[i] = byte(i * 7)
		}
		storeCfg.AtRestKey = key
		tunneled = true
	default:
		return nil, fmt.Errorf("experiments: unknown setup %q", setup)
	}

	st, err := core.Open(storeCfg)
	if err != nil {
		return nil, err
	}
	srv, err := server.Listen("127.0.0.1:0", st)
	if err != nil {
		st.Close()
		return nil, err
	}
	env := &fig1Env{store: st, server: srv, addr: srv.Addr()}
	if tunneled {
		tun, err := tlsproxy.NewTunnel(srv.Addr(), tlsproxy.Throttle{BytesPerSec: cfg.ThrottleBytesPerSec})
		if err != nil {
			env.Close()
			return nil, err
		}
		env.tunnel = tun
		env.addr = tun.Addr()
	}
	return env, nil
}

func runFig1Workloads(env *fig1Env, cfg Figure1Config, rows []Figure1Row, setup string) error {
	factory := func(int) (ycsb.DB, error) { return ycsb.DialNetworkDB(env.addr) }
	if cfg.PoolSize > 0 {
		shared, err := gdprkv.Dial(context.Background(), env.addr,
			gdprkv.WithPoolSize(cfg.PoolSize))
		if err != nil {
			return err
		}
		defer shared.Close()
		factory = func(int) (ycsb.DB, error) { return ycsb.NewNetworkDB(shared), nil }
	}
	record := func(label string, thr float64) {
		for i := range rows {
			if rows[i].Workload == label {
				rows[i].Throughput[setup] = thr
			}
		}
	}

	// Figure 1's sequence mirrors the YCSB core recipe: Load-A, then run
	// A, B, C, D on that dataset; reload for E (Load-E), run E, then F.
	loadA, err := ycsb.Load(ycsb.Config{
		Workload: ycsb.WorkloadA, RecordCount: cfg.RecordCount,
		ValueSize: cfg.ValueSize, Workers: cfg.Workers, Factory: factory,
	})
	if err != nil {
		return fmt.Errorf("load-a: %w", err)
	}
	record("Load-A", loadA.Throughput)

	for _, w := range []string{"A", "B", "C", "D"} {
		res, err := ycsb.Run(ycsb.Config{
			Workload: ycsb.CoreWorkloads[w], RecordCount: cfg.RecordCount,
			OperationCount: cfg.OperationCount, ValueSize: cfg.ValueSize,
			Workers: cfg.Workers, Factory: factory,
		})
		if err != nil {
			return fmt.Errorf("workload %s: %w", w, err)
		}
		record(w, res.Throughput)
	}

	// Reload for E (the paper reports Load-E separately because D's
	// inserts perturb the dataset).
	env.store.Engine().FlushAll()
	loadE, err := ycsb.Load(ycsb.Config{
		Workload: ycsb.WorkloadE, RecordCount: cfg.RecordCount,
		ValueSize: cfg.ValueSize, Workers: cfg.Workers, Factory: factory,
	})
	if err != nil {
		return fmt.Errorf("load-e: %w", err)
	}
	record("Load-E", loadE.Throughput)

	for _, w := range []string{"E", "F"} {
		res, err := ycsb.Run(ycsb.Config{
			Workload: ycsb.CoreWorkloads[w], RecordCount: cfg.RecordCount,
			OperationCount: cfg.OperationCount, ValueSize: cfg.ValueSize,
			Workers: cfg.Workers, Factory: factory,
		})
		if err != nil {
			return fmt.Errorf("workload %s: %w", w, err)
		}
		record(w, res.Throughput)
	}
	return nil
}

// FormatFigure1 renders rows as the paper's bar-chart data in text form.
func FormatFigure1(rows []Figure1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "Workload")
	for _, s := range Figure1Setups {
		fmt.Fprintf(&b, " %14s", s)
	}
	fmt.Fprintf(&b, " %18s %18s\n", "AOF-sync/unmod", "LUKS+TLS/unmod")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s", r.Workload)
		for _, s := range Figure1Setups {
			fmt.Fprintf(&b, " %11.0f op/s", r.Throughput[s])
		}
		base := r.Throughput["Unmodified"]
		if base > 0 {
			fmt.Fprintf(&b, " %17.1f%% %17.1f%%",
				100*r.Throughput["AOF w/ sync"]/base,
				100*r.Throughput["LUKS + TLS"]/base)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
