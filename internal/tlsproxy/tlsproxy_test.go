package tlsproxy

import (
	"bufio"
	"bytes"
	"crypto/tls"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"gdprstore/internal/testutil"
)

// echoServer is a plaintext TCP backend that echoes lines.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(c net.Conn) {
				defer wg.Done()
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }
}

func TestGenerateCert(t *testing.T) {
	cert, err := GenerateCert()
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Certificate) == 0 || cert.PrivateKey == nil {
		t.Fatal("incomplete certificate")
	}
}

func TestTunnelEndToEnd(t *testing.T) {
	backend, stop := echoServer(t)
	defer stop()
	tun, err := NewTunnel(backend, Throttle{})
	if err != nil {
		t.Fatal(err)
	}
	defer tun.Close()

	c, err := net.Dial("tcp", tun.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := "hello through the tunnel\n"
	if _, err := io.WriteString(c, msg); err != nil {
		t.Fatal(err)
	}
	got, err := bufio.NewReader(c).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if got != msg {
		t.Fatalf("echo = %q", got)
	}
}

func TestTunnelTrafficIsEncrypted(t *testing.T) {
	// Interpose a sniffer between the client proxy and the server proxy to
	// verify the hop actually carries TLS, not plaintext.
	backend, stop := echoServer(t)
	defer stop()
	cert, err := GenerateCert()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerProxy("127.0.0.1:0", backend, cert, Throttle{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Sniffer listens, forwards to srv, and records bytes.
	snifLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer snifLn.Close()
	var mu sync.Mutex
	var sniffed bytes.Buffer
	go func() {
		c, err := snifLn.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			c.Close()
			return
		}
		go func() {
			buf := make([]byte, 4096)
			for {
				n, err := c.Read(buf)
				if n > 0 {
					mu.Lock()
					sniffed.Write(buf[:n])
					mu.Unlock()
					up.Write(buf[:n])
				}
				if err != nil {
					up.Close()
					return
				}
			}
		}()
		io.Copy(c, up)
		c.Close()
	}()

	cli, err := NewClientProxy("127.0.0.1:0", snifLn.Addr().String(), nil, Throttle{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	c, err := net.Dial("tcp", cli.Addr())
	if err != nil {
		t.Fatal(err)
	}
	secret := "SUPER-SECRET-PERSONAL-DATA\n"
	io.WriteString(c, secret)
	bufio.NewReader(c).ReadString('\n')
	c.Close()

	mu.Lock()
	defer mu.Unlock()
	if sniffed.Len() == 0 {
		t.Fatal("sniffer saw no traffic")
	}
	if bytes.Contains(sniffed.Bytes(), []byte("SUPER-SECRET")) {
		t.Fatal("plaintext visible on the proxied hop — TLS not in effect")
	}
}

func TestTunnelMultipleConnections(t *testing.T) {
	backend, stop := echoServer(t)
	defer stop()
	tun, err := NewTunnel(backend, Throttle{})
	if err != nil {
		t.Fatal(err)
	}
	defer tun.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 10)
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := net.Dial("tcp", tun.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			msg := fmt.Sprintf("conn-%d\n", i)
			io.WriteString(c, msg)
			got, err := bufio.NewReader(c).ReadString('\n')
			if err != nil || got != msg {
				errs <- fmt.Errorf("conn %d: got %q err %v", i, got, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestThrottleLimitsBandwidth(t *testing.T) {
	backend, stop := echoServer(t)
	defer stop()
	// 256 KiB/s throttle; push 128 KiB => at least ~0.4s including pacing.
	tun, err := NewTunnel(backend, Throttle{BytesPerSec: 256 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer tun.Close()
	c, err := net.Dial("tcp", tun.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := bytes.Repeat([]byte{'x'}, 128*1024)
	start := time.Now()
	go func() {
		c.Write(payload)
	}()
	if _, err := io.ReadFull(bufio.NewReader(c), make([]byte, len(payload))); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 300*time.Millisecond {
		t.Fatalf("throttled transfer finished in %v — throttle ineffective", elapsed)
	}
}

func TestProxyStats(t *testing.T) {
	backend, stop := echoServer(t)
	defer stop()
	tun, _ := NewTunnel(backend, Throttle{})
	defer tun.Close()
	c, _ := net.Dial("tcp", tun.Addr())
	io.WriteString(c, "ping\n")
	bufio.NewReader(c).ReadString('\n')
	c.Close()
	// The pipes account asynchronously; poll rather than sleep.
	testutil.Eventually(t, 5*time.Second, 0, func() bool {
		up, down := tun.Client.Stats()
		return up != 0 || down != 0
	}, "no bytes accounted")
}

func TestServerProxyRejectsPlainTCP(t *testing.T) {
	backend, stop := echoServer(t)
	defer stop()
	cert, _ := GenerateCert()
	srv, err := NewServerProxy("127.0.0.1:0", backend, cert, Throttle{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	io.WriteString(c, "not a tls handshake\n")
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	n, _ := c.Read(buf)
	// Either the connection drops or we get TLS alert bytes, but never an
	// echo of the plaintext.
	if n > 0 && bytes.Contains(buf[:n], []byte("not a tls")) {
		t.Fatal("plaintext passed through a TLS server proxy")
	}
}

func TestTLSVersionFloor(t *testing.T) {
	backend, stop := echoServer(t)
	defer stop()
	cert, _ := GenerateCert()
	srv, _ := NewServerProxy("127.0.0.1:0", backend, cert, Throttle{})
	defer srv.Close()
	cfg := &tls.Config{InsecureSkipVerify: true, MaxVersion: tls.VersionTLS10}
	if _, err := tls.Dial("tcp", srv.Addr(), cfg); err == nil {
		t.Fatal("TLS 1.0 handshake accepted")
	}
}

func TestCloseIdempotent(t *testing.T) {
	backend, stop := echoServer(t)
	defer stop()
	tun, _ := NewTunnel(backend, Throttle{})
	if err := tun.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tun.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
