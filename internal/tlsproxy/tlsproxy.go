// Package tlsproxy reproduces the paper's §4.2 in-transit encryption setup:
// the authors wrapped Redis traffic in TLS with stunnel, a pair of proxies
// that tunnel plaintext TCP through a TLS connection:
//
//	client app ──plain──▶ client proxy ══TLS══▶ server proxy ──plain──▶ server
//
// This package implements both proxy halves with crypto/tls and a
// self-signed certificate generated at startup, plus an optional bandwidth
// throttle that models the 44 Gbps → 4.9 Gbps collapse the authors measured
// on their testbed network.
package tlsproxy

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"io"
	"math/big"
	"net"
	"sync"
	"time"
)

// GenerateCert creates a self-signed TLS certificate for 127.0.0.1,
// standing in for the certificates the stunnel deployment would use.
func GenerateCert() (tls.Certificate, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("tlsproxy: keygen: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "gdprstore-tunnel"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * 365 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
		DNSNames:     []string{"localhost"},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &priv.PublicKey, priv)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("tlsproxy: cert: %w", err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: priv}, nil
}

// Throttle limits tunnel bandwidth to model a constrained network path.
// BytesPerSec <= 0 means unlimited.
type Throttle struct {
	BytesPerSec int64
}

// Proxy is one tunnel endpoint. Construct with NewServerProxy or
// NewClientProxy and stop with Close.
type Proxy struct {
	ln       net.Listener
	dialAddr string
	dialTLS  *tls.Config // nil for plain dial (server side dials backend)
	throttle Throttle

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	bytesUp   int64
	bytesDown int64
}

// NewServerProxy listens for TLS connections on listenAddr and forwards the
// decrypted stream to the plaintext backend at backendAddr (the storage
// server). It is the stunnel "server mode" half.
func NewServerProxy(listenAddr, backendAddr string, cert tls.Certificate, th Throttle) (*Proxy, error) {
	cfg := &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}
	ln, err := tls.Listen("tcp", listenAddr, cfg)
	if err != nil {
		return nil, fmt.Errorf("tlsproxy: listen: %w", err)
	}
	p := &Proxy{ln: ln, dialAddr: backendAddr, throttle: th, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// NewClientProxy listens for plaintext connections on listenAddr and
// forwards each through a TLS connection to the remote (server-proxy)
// address. It is the stunnel "client mode" half. The root pool must trust
// the server proxy's certificate; pass nil to skip verification only in
// tests.
func NewClientProxy(listenAddr, remoteAddr string, roots *x509.CertPool, th Throttle) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tlsproxy: listen: %w", err)
	}
	cfg := &tls.Config{MinVersion: tls.VersionTLS12}
	if roots != nil {
		cfg.RootCAs = roots
		cfg.ServerName = "localhost"
	} else {
		cfg.InsecureSkipVerify = true
	}
	p := &Proxy{ln: ln, dialAddr: remoteAddr, dialTLS: cfg, throttle: th, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			return
		}
		p.conns[c] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.handle(c)
	}
}

func (p *Proxy) handle(in net.Conn) {
	defer p.wg.Done()
	defer p.forget(in)
	defer in.Close()

	var out net.Conn
	var err error
	if p.dialTLS != nil {
		out, err = tls.Dial("tcp", p.dialAddr, p.dialTLS)
	} else {
		out, err = net.Dial("tcp", p.dialAddr)
	}
	if err != nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		out.Close()
		return
	}
	p.conns[out] = struct{}{}
	p.mu.Unlock()
	defer p.forget(out)
	defer out.Close()

	done := make(chan struct{}, 2)
	go func() {
		n := p.pipe(out, in)
		p.addBytes(&p.bytesUp, n)
		// half-close toward the backend so request streams terminate
		if cw, ok := out.(interface{ CloseWrite() error }); ok {
			cw.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() {
		n := p.pipe(in, out)
		p.addBytes(&p.bytesDown, n)
		if cw, ok := in.(interface{ CloseWrite() error }); ok {
			cw.CloseWrite()
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}

func (p *Proxy) forget(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) addBytes(field *int64, n int64) {
	p.mu.Lock()
	*field += n
	p.mu.Unlock()
}

// pipe copies src to dst, applying the bandwidth throttle, and returns the
// byte count.
func (p *Proxy) pipe(dst io.Writer, src io.Reader) int64 {
	if p.throttle.BytesPerSec <= 0 {
		n, _ := io.Copy(dst, src)
		return n
	}
	// Token-bucket style pacing in 64 KiB chunks.
	const chunk = 64 * 1024
	buf := make([]byte, chunk)
	var total int64
	start := time.Now()
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return total
			}
			total += int64(n)
			// Sleep until the pace catches up with the budget.
			allowed := time.Duration(float64(total) / float64(p.throttle.BytesPerSec) * float64(time.Second))
			if elapsed := time.Since(start); allowed > elapsed {
				time.Sleep(allowed - elapsed)
			}
		}
		if err != nil {
			return total
		}
	}
}

// Stats returns bytes forwarded in each direction.
func (p *Proxy) Stats() (up, down int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytesUp, p.bytesDown
}

// Close stops accepting, closes every active connection, and waits for
// handlers to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
	return err
}

// Tunnel is a ready-made stunnel pair: client proxy -> TLS -> server proxy
// -> backend. It is what the Figure 1 "LUKS + TLS" configuration routes
// traffic through.
type Tunnel struct {
	Server *Proxy
	Client *Proxy
}

// NewTunnel builds a loopback tunnel in front of backendAddr and returns
// it. Dial the returned Tunnel.Client.Addr() instead of the backend.
func NewTunnel(backendAddr string, th Throttle) (*Tunnel, error) {
	cert, err := GenerateCert()
	if err != nil {
		return nil, err
	}
	leaf, err := x509.ParseCertificate(cert.Certificate[0])
	if err != nil {
		return nil, err
	}
	roots := x509.NewCertPool()
	roots.AddCert(leaf)

	srv, err := NewServerProxy("127.0.0.1:0", backendAddr, cert, th)
	if err != nil {
		return nil, err
	}
	cli, err := NewClientProxy("127.0.0.1:0", srv.Addr(), roots, th)
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &Tunnel{Server: srv, Client: cli}, nil
}

// Addr returns the address applications should dial (the client proxy).
func (t *Tunnel) Addr() string { return t.Client.Addr() }

// Close shuts down both halves.
func (t *Tunnel) Close() error {
	err1 := t.Client.Close()
	err2 := t.Server.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
