package ops

import (
	"net/http"

	"gdprstore/internal/metrics"
)

// Quantiles exported on every per-command latency summary.
var summaryQuantiles = []float64{0.5, 0.95, 0.99}

// handleMetrics renders the Prometheus text exposition. Every compliance
// gauge is emitted unconditionally — 0 when the feature is disabled — so
// scrapers and alert rules never see series appear and vanish with
// configuration.
func (o *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(o.renderMetrics()))
}

// renderMetrics builds the exposition text from point-in-time snapshots.
// It takes no locks beyond the snapshot reads themselves, so scraping
// never perturbs the command hot path.
func (o *Server) renderMetrics() string {
	e := metrics.NewExposition()
	st := o.rs.Store()

	// Server vitals.
	e.Counter("gdprkv_commands_total", "RESP commands served", float64(o.rs.Commands()))
	e.Gauge("gdprkv_dbsize", "keys currently stored", float64(st.Engine().Len()))

	// Retention enforcement — the storage-limitation analogue of
	// replication lag (§3.1: "data cannot be stored indefinitely").
	rt := st.RetentionStats()
	e.Gauge("gdprkv_retention_lag_seconds",
		"age of the oldest record past its retention deadline but not yet reclaimed",
		rt.Lag.Seconds())
	e.Gauge("gdprkv_retention_overdue_records",
		"records past their retention deadline awaiting reclamation",
		float64(rt.OverdueRecords))
	e.Gauge("gdprkv_retention_tracked_deadlines",
		"keys carrying a retention deadline", float64(rt.TrackedDeadlines))
	e.Counter("gdprkv_retention_expired_total",
		"keys reclaimed by retention enforcement", float64(rt.ExpiredTotal))

	// Erasure (Art. 17) — crypto-shredding plus lazy-delete sweep.
	er := st.ErasureStats()
	e.Gauge("gdprkv_erasure_lag_seconds",
		"age of the oldest crypto-shredded owner whose ciphertext the sweep has not reclaimed",
		er.SweepLag.Seconds())
	e.Gauge("gdprkv_erasure_pending_owners",
		"shredded owners with unreclaimed ciphertext", float64(er.PendingOwners))
	e.Gauge("gdprkv_erasure_pending_records",
		"records still attributed to pending owners", float64(er.PendingRecords))
	e.Gauge("gdprkv_erasure_shredded_owners",
		"owners whose data key is destroyed", float64(er.ShreddedOwners))
	e.Counter("gdprkv_erasure_reclaimed_total",
		"dead records physically deleted by sweeps", float64(er.Reclaimed))
	e.Counter("gdprkv_erasure_sweep_cycles_total",
		"lazy-delete sweep cycles run", float64(er.SweepCycles))

	// Audit pipeline (Art. 30) pressure.
	var depth, capQ, enq, proc, drop, sinkErrs float64
	if t := st.Trail(); t != nil {
		as := t.Stats()
		depth, capQ = float64(as.QueueDepth), float64(as.QueueCap)
		enq, proc = float64(as.Enqueued), float64(as.Processed)
		drop, sinkErrs = float64(as.Dropped), float64(as.SinkErrors)
	}
	e.Gauge("gdprkv_audit_queue_depth", "audit records waiting in the pipeline queue", depth)
	e.Gauge("gdprkv_audit_queue_capacity", "audit pipeline queue capacity", capQ)
	e.Counter("gdprkv_audit_enqueued_total", "audit records accepted into the pipeline", enq)
	e.Counter("gdprkv_audit_processed_total", "audit records durably written", proc)
	e.Counter("gdprkv_audit_dropped_total", "audit records shed under backpressure", drop)
	e.Counter("gdprkv_audit_sink_errors_total", "audit sink write failures", sinkErrs)

	// Replication.
	rp := o.rs.ReplStatus()
	role := 0.0
	if rp.Role == "replica" {
		role = 1
	}
	e.Gauge("gdprkv_replication_role", "0 when primary, 1 when replica", role)
	e.Gauge("gdprkv_replication_offset_bytes", "replication journal offset", float64(rp.Offset))
	e.Gauge("gdprkv_connected_replicas", "replicas attached to this primary", float64(rp.ConnectedReplicas))

	// Per-command latency summaries, labelled by op.
	ops := o.rs.CommandStats()
	for _, name := range ops.Names() {
		h := ops.Get(name).Hist
		if h.Count() == 0 {
			continue
		}
		e.Summary("gdprkv_command_duration_seconds", "per-command service latency",
			h, summaryQuantiles, metrics.Label{Name: "op", Value: name})
	}
	return e.String()
}
