// Package ops is the embedded HTTP observability surface: an always-on
// window into the compliance metrics the paper treats as the cost of GDPR
// — erasure lag, retention-enforcement lag, audit-pipeline pressure —
// alongside the familiar operational vitals (op rates, latency quantiles,
// replication offsets).
//
// It serves four endpoints from one listener (started by
// `gdprkv-server -ops-addr :7071`):
//
//	GET /          embedded auto-refreshing dashboard
//	GET /info      every INFO section as JSON
//	GET /info/{s}  one INFO section as a flat JSON object
//	GET /metrics   Prometheus text exposition (format 0.0.4)
//	GET /events    SSE stream of periodic stats deltas
//
// The /info endpoints render from the same section registry as the RESP
// INFO command (internal/server/sections.go), so the two protocols cannot
// drift; the ops tests assert parity in both directions. Everything is
// stdlib net/http — the project takes no external dependencies.
package ops

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"gdprstore/internal/server"
)

//go:embed dashboard.html
var dashboardHTML []byte

// Server is the HTTP observability server attached to one RESP server.
type Server struct {
	rs   *server.Server
	ln   net.Listener
	hs   *http.Server
	done chan struct{}

	mu     sync.Mutex
	closed bool
}

// Listen starts the ops server on addr (e.g. ":7071" or "127.0.0.1:0"),
// observing rs.
func Listen(addr string, rs *server.Server) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ops: listen: %w", err)
	}
	o := &Server{rs: rs, ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", o.handleDashboard)
	mux.HandleFunc("GET /info", o.handleInfo)
	mux.HandleFunc("GET /info/{section}", o.handleInfo)
	mux.HandleFunc("GET /metrics", o.handleMetrics)
	mux.HandleFunc("GET /events", o.handleEvents)
	o.hs = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go o.hs.Serve(ln)
	return o, nil
}

// Addr returns the listen address.
func (o *Server) Addr() string { return o.ln.Addr().String() }

// Close stops the listener and terminates active streams (SSE clients are
// unblocked via the done channel). Safe to call twice.
func (o *Server) Close() error {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return nil
	}
	o.closed = true
	close(o.done)
	o.mu.Unlock()
	return o.hs.Close()
}

func (o *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashboardHTML)
}

// handleInfo renders INFO sections as JSON. GET /info returns every
// applicable section keyed by name; GET /info/{section} returns that
// section's fields as one flat object (the shape the gdprbench ops
// sampler consumes). Field values stay strings, preserving INFO fidelity.
func (o *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	section := r.PathValue("section")
	snaps, err := o.rs.InfoSnapshot(strings.ToLower(section))
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	if section != "" {
		writeJSON(w, http.StatusOK, fieldsObject(snaps[0]))
		return
	}
	out := make(map[string]map[string]string, len(snaps))
	for _, snap := range snaps {
		out[snap.Name] = fieldsObject(snap)
	}
	writeJSON(w, http.StatusOK, out)
}

func fieldsObject(snap server.InfoSnapshot) map[string]string {
	m := make(map[string]string, len(snap.Fields))
	for _, f := range snap.Fields {
		m[f.Key] = f.Value
	}
	return m
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
