package ops

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gdprstore/internal/core"
	"gdprstore/internal/server"
	"gdprstore/internal/testutil"
	"gdprstore/pkg/gdprkv"
)

// fullConfig enables every observable subsystem (audit trail, envelope
// keyring) with enforcement relaxed, so the ops surface has all its
// sections and gauges live.
func fullConfig() core.Config {
	return core.Config{
		Compliant:    true,
		Capability:   core.CapabilityFull,
		AuditEnabled: true,
		Envelope:     true,
		MasterKey:    bytes.Repeat([]byte{7}, 32),
		EnforceACL:   core.Ptr(false),
		RequireTTL:   core.Ptr(false),
	}
}

// startOps spins up store → RESP server → ops server → client.
func startOps(t testing.TB, cfg core.Config) (*Server, *gdprkv.Client) {
	st, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := server.Listen("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Listen("127.0.0.1:0", rs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := gdprkv.Dial(context.Background(), rs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		o.Close()
		rs.Close()
		st.Close()
	})
	return o, c
}

func opsGET(t *testing.T, o *Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + o.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp.StatusCode, b
}

// parseInfoText splits a RESP INFO reply into section → field-key →
// value, the shape /info serves natively.
func parseInfoText(t *testing.T, text string) map[string]map[string]string {
	t.Helper()
	out := make(map[string]map[string]string)
	var cur map[string]string
	for _, line := range strings.Split(text, "\r\n") {
		if line == "" {
			continue
		}
		if name, ok := strings.CutPrefix(line, "# "); ok {
			cur = make(map[string]string)
			out[name] = cur
			continue
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok || cur == nil {
			t.Fatalf("malformed INFO line %q", line)
		}
		cur[k] = v
	}
	return out
}

// TestInfoParity asserts the registry guarantee from the outside: the
// RESP INFO report and GET /info carry exactly the same sections and the
// same field keys, in both directions, and per-section requests agree too.
func TestInfoParity(t *testing.T) {
	o, c := startOps(t, fullConfig())
	ctx := context.Background()
	// Drive traffic so commandstats exists and the store has state.
	if err := c.Set(ctx, "k1", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(ctx, "PING"); err != nil {
		t.Fatal(err)
	}

	// Prime commandstats with INFO's own entry, so the two full reports
	// that follow see the same key set (values still drift — every RESP
	// INFO call increments counters — so parity is over keys).
	if _, err := c.Info(ctx, ""); err != nil {
		t.Fatal(err)
	}

	respText, err := c.Info(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	respInfo := parseInfoText(t, respText)

	status, body := opsGET(t, o, "/info")
	if status != http.StatusOK {
		t.Fatalf("/info status %d", status)
	}
	var httpInfo map[string]map[string]string
	if err := json.Unmarshal(body, &httpInfo); err != nil {
		t.Fatalf("/info not JSON: %v\n%s", err, body)
	}

	for name, fields := range respInfo {
		hf, ok := httpInfo[name]
		if !ok {
			t.Errorf("section %q in RESP INFO but not /info", name)
			continue
		}
		for k := range fields {
			if _, ok := hf[k]; !ok {
				t.Errorf("field %s.%s in RESP INFO but not /info", name, k)
			}
		}
	}
	for name, fields := range httpInfo {
		rf, ok := respInfo[name]
		if !ok {
			t.Errorf("section %q in /info but not RESP INFO", name)
			continue
		}
		for k := range fields {
			if _, ok := rf[k]; !ok {
				t.Errorf("field %s.%s in /info but not RESP INFO", name, k)
			}
		}
	}

	// Per-section endpoint agrees with per-section RESP INFO.
	for _, name := range server.InfoSectionNames() {
		text, err := c.Info(ctx, name)
		if err != nil {
			t.Fatalf("INFO %s: %v", name, err)
		}
		want := parseInfoText(t, text)[name]
		status, body := opsGET(t, o, "/info/"+name)
		if status != http.StatusOK {
			t.Fatalf("/info/%s status %d", name, status)
		}
		var got map[string]string
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("/info/%s not JSON: %v", name, err)
		}
		if len(got) != len(want) {
			t.Errorf("/info/%s has %d fields, RESP INFO %s has %d", name, len(got), name, len(want))
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Errorf("/info/%s missing field %s", name, k)
			}
		}
	}

	// Static fields must agree exactly across protocols.
	var gdpr map[string]string
	_, body = opsGET(t, o, "/info/gdprstore")
	if err := json.Unmarshal(body, &gdpr); err != nil {
		t.Fatal(err)
	}
	respGdpr := parseInfoText(t, respText)["gdprstore"]
	for _, k := range []string{"compliant", "timing", "capability"} {
		if gdpr[k] != respGdpr[k] {
			t.Errorf("gdprstore.%s: http %q vs resp %q", k, gdpr[k], respGdpr[k])
		}
	}

	// Unknown sections 404 with the RESP error message.
	status, body = opsGET(t, o, "/info/bogus")
	if status != http.StatusNotFound || !strings.Contains(string(body), "unknown INFO section") {
		t.Errorf("/info/bogus = %d %q", status, body)
	}
}

func TestMetricsUnderConcurrentTraffic(t *testing.T) {
	o, c := startOps(t, fullConfig())
	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k%d-%d", g, i)
				if err := c.Set(ctx, key, []byte("v")); err != nil {
					return
				}
			}
		}(g)
	}
	for i := 0; i < 25; i++ {
		status, body := opsGET(t, o, "/metrics")
		if status != http.StatusOK {
			t.Fatalf("/metrics status %d", status)
		}
		for _, series := range []string{
			"gdprkv_erasure_lag_seconds",
			"gdprkv_retention_lag_seconds",
			"gdprkv_audit_queue_depth",
			"gdprkv_commands_total",
		} {
			if !strings.Contains(string(body), series) {
				t.Fatalf("/metrics missing %s:\n%s", series, body)
			}
		}
	}
	close(stop)
	wg.Wait()
	// With traffic flowing, the per-command summary must have appeared.
	_, body := opsGET(t, o, "/metrics")
	if !strings.Contains(string(body), `gdprkv_command_duration_seconds{op="SET",quantile="0.99"}`) {
		t.Errorf("no SET latency summary in /metrics:\n%s", body)
	}
}

// readSSE reads Server-Sent Events off a response body, sending each data
// payload on the returned channel until the stream errors or closes.
func readSSE(body io.Reader, events chan<- string) {
	defer close(events)
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			events <- data
		}
	}
}

func TestEventsStream(t *testing.T) {
	o, c := startOps(t, fullConfig())
	if _, err := c.Do(context.Background(), "PING"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://"+o.Addr()+"/events?interval=50", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	events := make(chan string, 16)
	go readSSE(resp.Body, events)
	var got []string
	timeout := time.After(5 * time.Second)
	for len(got) < 3 {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("stream closed after %d events", len(got))
			}
			got = append(got, ev)
		case <-timeout:
			t.Fatalf("only %d SSE ticks within 5s", len(got))
		}
	}
	var first, last statsEvent
	if err := json.Unmarshal([]byte(got[0]), &first); err != nil {
		t.Fatalf("tick not JSON: %v\n%s", err, got[0])
	}
	if err := json.Unmarshal([]byte(got[len(got)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if first.Seq != 1 || last.Seq <= first.Seq {
		t.Errorf("seq did not advance: first=%d last=%d", first.Seq, last.Seq)
	}
	if first.Commands == 0 || first.ReplRole != "master" {
		t.Errorf("implausible first tick: %+v", first)
	}

	// Client disconnect must end the stream promptly and leave the server
	// healthy.
	cancel()
	testutil.Eventually(t, 3*time.Second, 5*time.Millisecond, func() bool {
		_, ok := <-events
		return !ok
	}, "SSE stream did not close after client disconnect")
	if status, _ := opsGET(t, o, "/info"); status != http.StatusOK {
		t.Errorf("/info status %d after SSE disconnect", status)
	}
}

// TestCloseNoGoroutineLeak pins graceful shutdown: closing the ops server
// unblocks active SSE streams and returns the process to its pre-ops
// goroutine census.
func TestCloseNoGoroutineLeak(t *testing.T) {
	st, err := core.Open(fullConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rs, err := server.Listen("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	baseline := runtime.NumGoroutine()
	o, err := Listen("127.0.0.1:0", rs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + o.Addr() + "/events?interval=50")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := make(chan string, 16)
	go readSSE(resp.Body, events)
	select {
	case <-events:
	case <-time.After(3 * time.Second):
		t.Fatal("no SSE tick before shutdown")
	}

	if err := o.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := o.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	testutil.Eventually(t, 3*time.Second, 5*time.Millisecond, func() bool {
		_, ok := <-events
		return !ok
	}, "SSE stream still open after ops Close")
	http.DefaultClient.CloseIdleConnections()
	testutil.Eventually(t, 3*time.Second, 10*time.Millisecond, func() bool {
		return runtime.NumGoroutine() <= baseline
	}, "goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

func TestDashboardServed(t *testing.T) {
	o, _ := startOps(t, fullConfig())
	status, body := opsGET(t, o, "/")
	if status != http.StatusOK || !strings.Contains(string(body), "EventSource(\"/events") {
		t.Fatalf("dashboard = %d, EventSource present: %v", status,
			strings.Contains(string(body), "EventSource"))
	}
}

// benchOps builds a server with populated stats for render benchmarks.
func benchOps(b *testing.B) *Server {
	o, c := startOps(b, fullConfig())
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		if err := c.Set(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := c.Do(ctx, "PING"); err != nil {
		b.Fatal(err)
	}
	return o
}

func BenchmarkOps_MetricsRender(b *testing.B) {
	o := benchOps(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(o.renderMetrics()) == 0 {
			b.Fatal("empty exposition")
		}
	}
}

func BenchmarkOps_InfoJSON(b *testing.B) {
	o := benchOps(b)
	req := httptest.NewRequest("GET", "/info", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		o.hs.Handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}
