package ops

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"gdprstore/internal/metrics"
)

// statsEvent is the JSON payload of one SSE tick: the live numbers the
// dashboard renders, with rates derived from the delta since the previous
// tick on this stream.
type statsEvent struct {
	Seq             uint64  `json:"seq"`
	Commands        uint64  `json:"commands"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	P50Micros       int64   `json:"p50_us"`
	P99Micros       int64   `json:"p99_us"`
	DBSize          int     `json:"dbsize"`
	RetentionLagMs  int64   `json:"retention_lag_ms"`
	RetentionQueue  int     `json:"retention_overdue"`
	ErasureLagMs    int64   `json:"erasure_lag_ms"`
	ErasurePending  int     `json:"erasure_pending_owners"`
	AuditQueueDepth int     `json:"audit_queue_depth"`
	AuditDropped    uint64  `json:"audit_dropped"`
	ReplRole        string  `json:"repl_role"`
	ReplOffset      int64   `json:"repl_offset"`
	Replicas        int     `json:"replicas"`
}

// handleEvents streams periodic stats deltas as Server-Sent Events. The
// tick period comes from the `interval` query parameter (milliseconds,
// default 1000, floor 50). The first event is sent immediately so a
// client never waits a full period for its first datum. The stream ends
// when the client disconnects or the ops server closes.
func (o *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	interval := time.Second
	if v := r.URL.Query().Get("interval"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms <= 0 {
			http.Error(w, "bad interval", http.StatusBadRequest)
			return
		}
		if ms < 50 {
			ms = 50
		}
		interval = time.Duration(ms) * time.Millisecond
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	t := time.NewTicker(interval)
	defer t.Stop()
	var seq uint64
	prevCommands := o.rs.Commands()
	prevAt := time.Now()
	send := func() bool {
		seq++
		now := time.Now()
		cmds := o.rs.Commands()
		ev := o.snapshotEvent()
		ev.Seq = seq
		if dt := now.Sub(prevAt).Seconds(); dt > 0 {
			ev.OpsPerSec = float64(cmds-prevCommands) / dt
		}
		prevCommands, prevAt = cmds, now
		b, _ := json.Marshal(ev)
		if _, err := w.Write([]byte("event: stats\ndata: " + string(b) + "\n\n")); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !send() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-o.done:
			return
		case <-t.C:
			if !send() {
				return
			}
		}
	}
}

// snapshotEvent gathers everything but the stream-local sequence and rate.
func (o *Server) snapshotEvent() statsEvent {
	st := o.rs.Store()
	rt := st.RetentionStats()
	er := st.ErasureStats()
	rp := o.rs.ReplStatus()
	ev := statsEvent{
		Commands:       o.rs.Commands(),
		DBSize:         st.Engine().Len(),
		RetentionLagMs: rt.Lag.Milliseconds(),
		RetentionQueue: rt.OverdueRecords,
		ErasureLagMs:   er.SweepLag.Milliseconds(),
		ErasurePending: er.PendingOwners,
		ReplRole:       rp.Role,
		ReplOffset:     rp.Offset,
		Replicas:       rp.ConnectedReplicas,
	}
	if t := st.Trail(); t != nil {
		as := t.Stats()
		ev.AuditQueueDepth = as.QueueDepth
		ev.AuditDropped = as.Dropped
	}
	// Aggregate latency across every command by merging the per-op
	// histograms into a scratch one — cheap (fixed 1280 buckets per op)
	// and lock-free against the hot path.
	agg := metrics.NewHistogram()
	ops := o.rs.CommandStats()
	for _, name := range ops.Names() {
		agg.Merge(ops.Get(name).Hist)
	}
	if agg.Count() > 0 {
		ev.P50Micros = agg.Quantile(0.5).Microseconds()
		ev.P99Micros = agg.Quantile(0.99).Microseconds()
	}
	return ev
}
