// Package testutil holds shared test helpers. Its headline export is
// Eventually, the bounded-polling replacement for sleep-based waits:
// sleeps calibrated for a fast machine flake on slow CI runners (and
// under -race, which can slow code 10×), while a bounded poll waits
// exactly as long as the condition needs, up to an explicit deadline.
package testutil

import (
	"time"
)

// TB is the subset of testing.TB Eventually needs; declared locally so the
// package stays importable from non-test code without linking "testing".
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}

// Eventually polls cond every interval until it returns true, failing t if
// timeout elapses first. Use it instead of time.Sleep when waiting for a
// background goroutine (replication apply, server accept, audit flush) to
// reach an observable state.
func Eventually(t TB, timeout, interval time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v: "+format, append([]any{timeout}, args...)...)
		}
		time.Sleep(interval)
	}
}
